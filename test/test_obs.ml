(* Tests for the lib/obs tracing layer: span nesting and phase
   aggregation, round attribution through the Rounds hook, the
   disabled-mode cost contract, well-formedness of the Chrome / JSONL
   exports (parsed back with Json_lite), histogram percentiles, the
   flight recorder, the Prometheus renderer, and the Unix-socket
   metrics endpoint. *)

module Obs = Nw_obs.Obs
module J = Nw_obs.Json_lite
module Flight = Nw_obs.Flight
module Prom = Nw_obs.Prometheus
module Mserver = Nw_obs.Metrics_server
module Rounds = Nw_localsim.Rounds

(* recording is a process-wide switch: every test restores it so the
   rest of the suite (and the default-off contract) is unaffected *)
let with_enabled f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let phase_by_name t name =
  List.find_opt (fun (p : Obs.phase) -> p.Obs.name = name) (Obs.phases t)

(* ------------------------------------------------------------------ *)
(* disabled mode                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_passthrough () =
  Obs.set_enabled false;
  Alcotest.(check int) "span returns the thunk value" 42
    (Obs.span "x" (fun () -> 41 + 1));
  let (), t =
    Obs.collect (fun () ->
        Obs.span "y" (fun () -> ());
        Obs.count "c";
        Obs.observe "h" 1.0;
        Obs.set_attr "k" (Obs.Int 1))
  in
  Alcotest.(check bool) "trace stays empty when disabled" true
    (Obs.is_empty t)

let test_disabled_no_alloc () =
  Obs.set_enabled false;
  let thunk () = () in
  let v = 1.0 in
  (* warm-up so any one-time setup is out of the measured window *)
  for _ = 1 to 100 do
    Obs.span "hot" thunk;
    Obs.count "c";
    Obs.observe "h" v
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.span "hot" thunk;
    Obs.count "c";
    Obs.observe "h" v
  done;
  let dw = Gc.minor_words () -. w0 in
  (* tolerance covers the boxes of Gc.minor_words itself; 10k disabled
     probes must not allocate per call *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled probes allocate nothing (%.0f words)" dw)
    true (dw < 256.0)

(* ------------------------------------------------------------------ *)
(* spans, nesting, phases                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_enabled @@ fun () ->
  let (), t =
    Obs.collect (fun () ->
        Obs.span "a" (fun () ->
            Obs.span "b" (fun () -> ());
            Obs.span "b" (fun () -> Obs.span "c" (fun () -> ()))))
  in
  Alcotest.(check bool) "trace not empty" false (Obs.is_empty t);
  let names = List.map (fun (p : Obs.phase) -> p.Obs.name) (Obs.phases t) in
  Alcotest.(check (list string))
    "phases in first-seen pre-order" [ "a"; "b"; "c" ] names;
  let a = Option.get (phase_by_name t "a") in
  let b = Option.get (phase_by_name t "b") in
  Alcotest.(check int) "a called once" 1 a.Obs.calls;
  Alcotest.(check int) "b called twice" 2 b.Obs.calls;
  (* self time never exceeds total, and a's total covers its children *)
  Alcotest.(check bool) "self <= total" true
    (Int64.compare a.Obs.self_ns a.Obs.total_ns <= 0);
  Alcotest.(check bool) "root wall = a total" true
    (Int64.equal (Obs.root_wall_ns t) a.Obs.total_ns)

let test_span_exception_closes () =
  with_enabled @@ fun () ->
  let res, t =
    Obs.collect (fun () ->
        try Obs.span "boom" (fun () -> raise Exit) with Exit -> "caught")
  in
  Alcotest.(check string) "exception propagates" "caught" res;
  match phase_by_name t "boom" with
  | Some p -> Alcotest.(check int) "span closed once" 1 p.Obs.calls
  | None -> Alcotest.fail "span lost on exception"

let test_collect_isolation () =
  with_enabled @@ fun () ->
  let inner_ref = ref None in
  let (), outer =
    Obs.collect (fun () ->
        Obs.span "o" (fun () ->
            let (), inner = Obs.collect (fun () -> Obs.span "i" ignore) in
            inner_ref := Some inner))
  in
  let inner = Option.get !inner_ref in
  Alcotest.(check (list string))
    "inner trace sees only its own span" [ "i" ]
    (List.map (fun (p : Obs.phase) -> p.Obs.name) (Obs.phases inner));
  Alcotest.(check (list string))
    "outer trace does not absorb the inner one" [ "o" ]
    (List.map (fun (p : Obs.phase) -> p.Obs.name) (Obs.phases outer))

(* ------------------------------------------------------------------ *)
(* round attribution (the Rounds.charge hook)                          *)
(* ------------------------------------------------------------------ *)

let test_rounds_attribution () =
  with_enabled @@ fun () ->
  let r = Rounds.create () in
  let (), t =
    Obs.collect (fun () ->
        Obs.span "outer" (fun () ->
            Rounds.charge r ~label:"l1" 5;
            Obs.span "inner" (fun () -> Rounds.charge r ~label:"l2" 7));
        Rounds.charge r ~label:"l3" 2)
  in
  Alcotest.(check int) "ledger total" 14 (Rounds.total r);
  Alcotest.(check int) "trace total matches ledger" 14 (Obs.total_rounds t);
  Alcotest.(check int) "outside-span charge is unattributed" 2
    (Obs.unattributed_rounds t);
  let outer = Option.get (phase_by_name t "outer") in
  let inner = Option.get (phase_by_name t "inner") in
  Alcotest.(check int) "outer keeps only its self-rounds" 5 outer.Obs.rounds;
  Alcotest.(check int) "inner rounds" 7 inner.Obs.rounds;
  Alcotest.(check (list (pair string int)))
    "per-label split survives" [ ("l2", 7) ]
    inner.Obs.rounds_by_label;
  (* the BENCH invariant: phase self-rounds + unattributed = flat total *)
  let phase_sum =
    List.fold_left
      (fun acc (p : Obs.phase) -> acc + p.Obs.rounds)
      0 (Obs.phases t)
  in
  Alcotest.(check int) "phases + unattributed = total" (Obs.total_rounds t)
    (phase_sum + Obs.unattributed_rounds t)

(* ------------------------------------------------------------------ *)
(* counters and histograms                                             *)
(* ------------------------------------------------------------------ *)

let test_counters_histograms () =
  with_enabled @@ fun () ->
  let (), t =
    Obs.collect (fun () ->
        Obs.count "c";
        Obs.count "c" ~by:4;
        Obs.observe "h" 1.0;
        Obs.observe "h" 2.0;
        Obs.observe "h" 4.0)
  in
  Alcotest.(check (list (pair string int)))
    "counter sums" [ ("c", 5) ] (Obs.counters t);
  match Obs.histograms t with
  | [ ("h", h) ] ->
      Alcotest.(check int) "count" 3 h.Obs.count;
      Alcotest.(check (float 1e-9)) "sum" 7.0 h.Obs.sum;
      Alcotest.(check (float 1e-9)) "min" 1.0 h.Obs.min;
      Alcotest.(check (float 1e-9)) "max" 4.0 h.Obs.max;
      Alcotest.(check int) "buckets cover every observation" 3
        (List.fold_left (fun acc (_, c) -> acc + c) 0 h.Obs.buckets)
  | other ->
      Alcotest.failf "expected one histogram, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* exports                                                             *)
(* ------------------------------------------------------------------ *)

let sample_trace () =
  let r = Rounds.create () in
  let (), t =
    Obs.collect (fun () ->
        Obs.span "root" ~attrs:[ ("k", Obs.Str "v") ] (fun () ->
            Obs.span "child" (fun () -> Rounds.charge r ~label:"lbl" 3);
            Obs.set_attr "colors_used" (Obs.Int 7));
        Obs.count "msgs" ~by:2;
        Obs.observe "len" 5.0)
  in
  t

let test_chrome_export_wellformed () =
  with_enabled @@ fun () ->
  let t = sample_trace () in
  let b = Buffer.create 1024 in
  Obs.Export.chrome b [ t ];
  let json = J.parse (Buffer.contents b) in
  let events =
    match Option.bind (J.member "traceEvents" json) J.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "missing traceEvents"
  in
  Alcotest.(check int) "one event per span" 2 (List.length events);
  List.iter
    (fun ev ->
      (match Option.bind (J.member "ph" ev) J.to_string with
      | Some "X" -> ()
      | _ -> Alcotest.fail "not a complete event");
      (match Option.bind (J.member "name" ev) J.to_string with
      | Some ("root" | "child") -> ()
      | _ -> Alcotest.fail "unexpected event name");
      match
        ( Option.bind (J.member "ts" ev) J.to_float,
          Option.bind (J.member "dur" ev) J.to_float )
      with
      | Some ts, Some dur ->
          Alcotest.(check bool) "ts/dur nonnegative" true
            (ts >= 0.0 && dur >= 0.0)
      | _ -> Alcotest.fail "missing ts/dur")
    events;
  (* attributes and rounds surface under args *)
  let root =
    List.find
      (fun ev ->
        Option.bind (J.member "name" ev) J.to_string = Some "root")
      events
  in
  let args = Option.get (J.member "args" root) in
  Alcotest.(check (option string)) "attr exported" (Some "v")
    (Option.bind (J.member "k" args) J.to_string);
  Alcotest.(check (option int)) "late attr exported" (Some 7)
    (Option.bind (J.member "colors_used" args) J.to_int);
  let child =
    List.find
      (fun ev ->
        Option.bind (J.member "name" ev) J.to_string = Some "child")
      events
  in
  let cargs = Option.get (J.member "args" child) in
  Alcotest.(check (option int)) "self-rounds exported" (Some 3)
    (Option.bind (J.member "rounds_self" cargs) J.to_int)

let test_jsonl_export_wellformed () =
  with_enabled @@ fun () ->
  let t = sample_trace () in
  let b = Buffer.create 1024 in
  Obs.Export.jsonl b [ t ];
  let lines =
    String.split_on_char '\n' (Buffer.contents b)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "several events" true (List.length lines >= 4);
  let kinds =
    List.map
      (fun line ->
        let json = J.parse line in
        match Option.bind (J.member "type" json) J.to_string with
        | Some k -> k
        | None -> Alcotest.fail "jsonl line without a type")
      lines
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "kind %s present" k)
        true (List.mem k kinds))
    [ "span"; "counter"; "histogram" ]

(* ------------------------------------------------------------------ *)
(* escaping: hostile strings through the shared JSON emitter           *)
(* ------------------------------------------------------------------ *)

let hostile = "q\"uote\\back\nnl\ttab\rcr\001ctl{}[]"

let test_emit_roundtrip () =
  List.iter
    (fun s ->
      match J.parse (J.Emit.string_value s) with
      | J.String s' -> Alcotest.(check string) "round-trips" s s'
      | _ -> Alcotest.fail "emitted string did not parse as a string")
    [ hostile; ""; "plain"; String.init 32 Char.chr ]

let test_chrome_escaping_roundtrip () =
  with_enabled @@ fun () ->
  let (), t =
    Obs.collect (fun () ->
        Obs.span hostile ~attrs:[ ("k", Obs.Str hostile) ] (fun () -> ()))
  in
  let b = Buffer.create 256 in
  Obs.Export.chrome b [ t ];
  let json = J.parse (Buffer.contents b) in
  let events =
    Option.get (Option.bind (J.member "traceEvents" json) J.to_list)
  in
  let ev = List.hd events in
  Alcotest.(check (option string))
    "hostile span name survives" (Some hostile)
    (Option.bind (J.member "name" ev) J.to_string);
  let args = Option.get (J.member "args" ev) in
  Alcotest.(check (option string))
    "hostile attr value survives" (Some hostile)
    (Option.bind (J.member "k" args) J.to_string)

(* ------------------------------------------------------------------ *)
(* histogram percentiles                                               *)
(* ------------------------------------------------------------------ *)

let hist_of thunk =
  with_enabled @@ fun () ->
  let (), t = Obs.collect thunk in
  match Obs.histograms t with
  | [ (_, h) ] -> h
  | other -> Alcotest.failf "expected one histogram, got %d" (List.length other)

let test_percentile_constant () =
  let h = hist_of (fun () -> for _ = 1 to 100 do Obs.observe "h" 5.0 done) in
  List.iter
    (fun q ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "p%g of a constant is the constant" q)
        (Some 5.0) (Obs.percentile h q))
    [ 0.0; 50.0; 90.0; 99.0; 100.0 ]

let test_percentile_single_sample () =
  let h = hist_of (fun () -> Obs.observe "h" 3.0) in
  List.iter
    (fun q ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "p%g of one sample is the sample" q)
        (Some 3.0) (Obs.percentile h q))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_percentile_empty () =
  let h =
    { Obs.count = 0; sum = 0.0; min = 0.0; max = 0.0; buckets = [] }
  in
  Alcotest.(check (option (float 1e-9))) "empty histogram" None
    (Obs.percentile h 50.0)

let test_percentile_uniform () =
  let h =
    hist_of (fun () ->
        for i = 1 to 1024 do Obs.observe "h" (float_of_int i) done)
  in
  let p q = Option.get (Obs.percentile h q) in
  (* power-of-two buckets: the answer is the bucket upper bound, within
     a factor of 2 of the true quantile *)
  let check_factor2 q truth =
    let v = p q in
    Alcotest.(check bool)
      (Printf.sprintf "p%g=%g within factor 2 of %g" q v truth)
      true
      (v >= truth /. 2.0 && v <= truth *. 2.0)
  in
  check_factor2 50.0 512.0;
  check_factor2 90.0 922.0;
  check_factor2 99.0 1014.0;
  Alcotest.(check bool) "monotone p50<=p90<=p99" true
    (p 50.0 <= p 90.0 && p 90.0 <= p 99.0);
  (* out-of-range quantiles clamp instead of raising *)
  Alcotest.(check bool) "q>100 clamps to max" true (p 200.0 <= h.Obs.max);
  Alcotest.(check bool) "q<0 clamps to min side" true (p (-5.0) >= h.Obs.min)

(* ------------------------------------------------------------------ *)
(* flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* recorder state is process-wide like the Obs switch: reset on entry,
   restore every switch on the way out *)
let with_flight f =
  Obs.set_enabled true;
  Flight.set_enabled true;
  Flight.reset ();
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.clear_sink ();
      Flight.reset ();
      Flight.configure ();
      Obs.set_enabled false)
    f

let read_whole path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let test_flight_roundtrip () =
  with_flight @@ fun () ->
  let r = Rounds.create () in
  let (), _t =
    Obs.collect (fun () ->
        Obs.span "work" (fun () -> Rounds.charge r ~label:"peel" 3);
        Obs.count "msgs" ~by:2)
  in
  Flight.mark "engine.checkpoint" [ ("pipeline", "p"); ("id", "p#1") ];
  let b = Buffer.create 1024 in
  Flight.render ~env:[ ("backend", "csr") ] ~reason:"unit-test" b;
  let json = J.parse (Buffer.contents b) in
  Alcotest.(check (option string))
    "schema" (Some "nw-flight/1")
    (Option.bind (J.member "schema" json) J.to_string);
  Alcotest.(check (option string))
    "reason" (Some "unit-test")
    (Option.bind (J.member "reason" json) J.to_string);
  let env = Option.get (J.member "env" json) in
  Alcotest.(check (option string))
    "env stamped" (Some "csr")
    (Option.bind (J.member "backend" env) J.to_string);
  let last = Option.get (J.member "last" json) in
  let ck = Option.get (J.member "engine.checkpoint" last) in
  let fields = Option.get (J.member "fields" ck) in
  Alcotest.(check (option string))
    "latest mark lifted into last" (Some "p#1")
    (Option.bind (J.member "id" fields) J.to_string);
  let doms = Option.get (Option.bind (J.member "domains" json) J.to_list) in
  Alcotest.(check bool) "at least one ring" true (doms <> []);
  let tags =
    List.concat_map
      (fun d ->
        match Option.bind (J.member "events" d) J.to_list with
        | Some evs ->
            List.filter_map
              (fun ev -> Option.bind (J.member "ev" ev) J.to_string)
              evs
        | None -> [])
      doms
  in
  List.iter
    (fun tag ->
      Alcotest.(check bool)
        (Printf.sprintf "event kind %s recorded" tag)
        true (List.mem tag tags))
    [ "open"; "close"; "count"; "charge"; "mark" ]

let test_flight_ring_bound () =
  Flight.configure ~capacity:8 ();
  with_flight @@ fun () ->
  for _ = 1 to 100 do
    Obs.count "c"
  done;
  let b = Buffer.create 1024 in
  Flight.render ~reason:"bound" b;
  let json = J.parse (Buffer.contents b) in
  let doms = Option.get (Option.bind (J.member "domains" json) J.to_list) in
  let mine =
    List.find
      (fun d ->
        Option.bind (J.member "tid" d) J.to_int
        = Some (Domain.self () :> int))
      doms
  in
  let evs = Option.get (Option.bind (J.member "events" mine) J.to_list) in
  Alcotest.(check int) "ring keeps the newest capacity events" 8
    (List.length evs);
  Alcotest.(check (option int)) "dump counts what fell off" (Some 92)
    (Option.bind (J.member "dropped" mine) J.to_int)

let test_flight_trigger_sink () =
  with_flight @@ fun () ->
  let path = Filename.temp_file "nwflight" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Flight.trigger ~reason:"ignored" ();
  Alcotest.(check int) "no dump without a sink" 0 (Flight.dumps_written ());
  Flight.set_sink ~env:[ ("a", "b") ] path;
  Obs.count "c";
  Flight.trigger ~reason:"pass-failed" ();
  Alcotest.(check int) "one dump" 1 (Flight.dumps_written ());
  let json = J.parse (read_whole path) in
  Alcotest.(check (option string))
    "dump carries the trigger reason" (Some "pass-failed")
    (Option.bind (J.member "reason" json) J.to_string);
  let env = Option.get (J.member "env" json) in
  Alcotest.(check (option string))
    "dump carries the armed env" (Some "b")
    (Option.bind (J.member "a" env) J.to_string)

let test_flight_disabled_is_silent () =
  Obs.set_enabled true;
  Flight.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  Flight.mark "m" [ ("k", "v") ];
  Alcotest.(check bool) "marks are dropped when disabled" true
    (Flight.last_mark "m" = None)

let test_flight_last_mark_latest () =
  with_flight @@ fun () ->
  Flight.mark "m" [ ("k", "old") ];
  Flight.mark "m" [ ("k", "new") ];
  Alcotest.(check bool) "last_mark returns the latest fields" true
    (Flight.last_mark "m" = Some [ ("k", "new") ])

(* ------------------------------------------------------------------ *)
(* prometheus rendering                                                *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_has text line =
  Alcotest.(check bool) (Printf.sprintf "exposes %S" line) true
    (contains text line)

let test_prometheus_render () =
  with_enabled @@ fun () ->
  let t = sample_trace () in
  let text = Prom.to_string [ t ] in
  check_has text "# TYPE nw_counter_total counter\n";
  check_has text "nw_counter_total{name=\"msgs\"} 2\n";
  (* one observation of 5.0 lands in the (4,8] power-of-two bucket;
     the +Inf bucket is the total count *)
  check_has text "# TYPE nw_len histogram\n";
  check_has text "nw_len_bucket{le=\"8\"} 1\n";
  check_has text "nw_len_bucket{le=\"+Inf\"} 1\n";
  check_has text "nw_len_sum 5\n";
  check_has text "nw_len_count 1\n";
  check_has text "nw_phase_calls_total{phase=\"root\"} 1\n";
  check_has text "nw_phase_rounds_total{phase=\"child\"} 3\n";
  check_has text "nw_rounds_total 3\n";
  check_has text "nw_rounds_unattributed_total 0\n"

let test_prometheus_merge () =
  with_enabled @@ fun () ->
  let t = sample_trace () in
  let text = Prom.to_string [ t; t ] in
  check_has text "nw_counter_total{name=\"msgs\"} 4\n";
  check_has text "nw_len_count 2\n";
  check_has text "nw_phase_calls_total{phase=\"root\"} 2\n";
  check_has text "nw_rounds_total 6\n"

let test_prometheus_label_escaping () =
  with_enabled @@ fun () ->
  let (), t = Obs.collect (fun () -> Obs.count "a\"b\nc\\d") in
  let text = Prom.to_string [ t ] in
  check_has text "nw_counter_total{name=\"a\\\"b\\nc\\\\d\"} 1\n"

let test_live_snapshot () =
  with_enabled @@ fun () ->
  let (), _t =
    Obs.collect (fun () ->
        Obs.span "done" (fun () -> ());
        Obs.count "c" ~by:3;
        Obs.observe "h" 1.0;
        Obs.span "open" (fun () ->
            let live = Obs.live_snapshot () in
            Alcotest.(check (list (pair string int)))
              "counters visible mid-run" [ ("c", 3) ] (Obs.counters live);
            Alcotest.(check int) "histogram visible mid-run" 1
              (match Obs.histograms live with
              | [ (_, h) ] -> h.Obs.count
              | _ -> -1);
            let names =
              List.map (fun (p : Obs.phase) -> p.Obs.name) (Obs.phases live)
            in
            Alcotest.(check (list string))
              "completed roots only; the open span is excluded" [ "done" ]
              names))
  in
  ()

(* ------------------------------------------------------------------ *)
(* metrics endpoint                                                    *)
(* ------------------------------------------------------------------ *)

let http_get path =
  let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close c with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect c (Unix.ADDR_UNIX path);
  let req = "GET / HTTP/1.0\r\n\r\n" in
  ignore (Unix.write_substring c req 0 (String.length req));
  let b = Buffer.create 512 in
  let bytes = Bytes.create 1024 in
  let rec drain () =
    match Unix.read c bytes 0 (Bytes.length bytes) with
    | 0 -> ()
    | k ->
        Buffer.add_subbytes b bytes 0 k;
        drain ()
  in
  drain ();
  Buffer.contents b

let test_metrics_server () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "nw_obs_test_metrics.sock"
  in
  let srv = Mserver.start ~path (fun () -> "nw_rounds_total 0\n") in
  let stopped = ref false in
  Fun.protect ~finally:(fun () -> if not !stopped then Mserver.stop srv)
  @@ fun () ->
  (* two scrapes: the accept loop must survive a served connection *)
  List.iter
    (fun _ ->
      let resp = http_get path in
      Alcotest.(check bool) "HTTP 200" true (contains resp "200 OK");
      Alcotest.(check bool) "prometheus content type" true
        (contains resp "text/plain; version=0.0.4");
      Alcotest.(check bool) "body served" true
        (contains resp "nw_rounds_total 0\n"))
    [ 1; 2 ];
  Mserver.stop srv;
  stopped := true;
  Alcotest.(check bool) "socket file unlinked on stop" false
    (Sys.file_exists path)

(* restart discipline: a second start on the same path must never see
   EADDRINUSE — whether the first server stopped cleanly or died
   leaving a stale socket file behind *)
let test_metrics_server_restart () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      "nw_obs_test_metrics_restart.sock"
  in
  let srv1 = Mserver.start ~path (fun () -> "gen 1\n") in
  Mserver.stop srv1;
  let srv2 = Mserver.start ~path (fun () -> "gen 2\n") in
  Fun.protect ~finally:(fun () -> Mserver.stop srv2)
  @@ fun () ->
  Alcotest.(check bool) "second server serves" true
    (contains (http_get path) "gen 2")

let test_metrics_server_stale_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      "nw_obs_test_metrics_stale.sock"
  in
  (* simulate a crashed server: bind a socket at [path] and close the
     fd without unlinking, leaving the socket file on disk *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists path);
  let srv = Mserver.start ~path (fun () -> "revived\n") in
  Fun.protect ~finally:(fun () -> Mserver.stop srv)
  @@ fun () ->
  Alcotest.(check bool) "server reclaimed the stale socket" true
    (contains (http_get path) "revived")

let test_metrics_server_refuses_non_socket () =
  let path = Filename.temp_file "nw_obs_metrics" ".not_a_sock" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (match Mserver.start ~path (fun () -> "") with
  | srv ->
      Mserver.stop srv;
      Alcotest.fail "start must refuse a non-socket path"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "the existing file was not unlinked" true
    (Sys.file_exists path)

let () =
  Alcotest.run "nw_obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "passthrough" `Quick test_disabled_passthrough;
          Alcotest.test_case "no allocation" `Quick test_disabled_no_alloc;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception" `Quick test_span_exception_closes;
          Alcotest.test_case "collect isolation" `Quick
            test_collect_isolation;
        ] );
      ( "rounds",
        [ Alcotest.test_case "attribution" `Quick test_rounds_attribution ] );
      ( "metrics",
        [
          Alcotest.test_case "counters+histograms" `Quick
            test_counters_histograms;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome" `Quick test_chrome_export_wellformed;
          Alcotest.test_case "jsonl" `Quick test_jsonl_export_wellformed;
          Alcotest.test_case "emit round-trip" `Quick test_emit_roundtrip;
          Alcotest.test_case "chrome hostile strings" `Quick
            test_chrome_escaping_roundtrip;
        ] );
      ( "percentiles",
        [
          Alcotest.test_case "constant" `Quick test_percentile_constant;
          Alcotest.test_case "single sample" `Quick
            test_percentile_single_sample;
          Alcotest.test_case "empty" `Quick test_percentile_empty;
          Alcotest.test_case "uniform" `Quick test_percentile_uniform;
        ] );
      ( "flight",
        [
          Alcotest.test_case "dump round-trip" `Quick test_flight_roundtrip;
          Alcotest.test_case "ring bound" `Quick test_flight_ring_bound;
          Alcotest.test_case "trigger sink" `Quick test_flight_trigger_sink;
          Alcotest.test_case "disabled is silent" `Quick
            test_flight_disabled_is_silent;
          Alcotest.test_case "last mark wins" `Quick
            test_flight_last_mark_latest;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "render" `Quick test_prometheus_render;
          Alcotest.test_case "merge" `Quick test_prometheus_merge;
          Alcotest.test_case "label escaping" `Quick
            test_prometheus_label_escaping;
          Alcotest.test_case "live snapshot" `Quick test_live_snapshot;
        ] );
      ( "metrics-server",
        [
          Alcotest.test_case "scrape and stop" `Quick test_metrics_server;
          Alcotest.test_case "restart on same path" `Quick
            test_metrics_server_restart;
          Alcotest.test_case "stale socket reclaimed" `Quick
            test_metrics_server_stale_socket;
          Alcotest.test_case "non-socket path refused" `Quick
            test_metrics_server_refuses_non_socket;
        ] );
    ]
