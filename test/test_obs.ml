(* Tests for the lib/obs tracing layer: span nesting and phase
   aggregation, round attribution through the Rounds hook, the
   disabled-mode cost contract, and well-formedness of the Chrome /
   JSONL exports (parsed back with Json_lite). *)

module Obs = Nw_obs.Obs
module J = Nw_obs.Json_lite
module Rounds = Nw_localsim.Rounds

(* recording is a process-wide switch: every test restores it so the
   rest of the suite (and the default-off contract) is unaffected *)
let with_enabled f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let phase_by_name t name =
  List.find_opt (fun (p : Obs.phase) -> p.Obs.name = name) (Obs.phases t)

(* ------------------------------------------------------------------ *)
(* disabled mode                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_passthrough () =
  Obs.set_enabled false;
  Alcotest.(check int) "span returns the thunk value" 42
    (Obs.span "x" (fun () -> 41 + 1));
  let (), t =
    Obs.collect (fun () ->
        Obs.span "y" (fun () -> ());
        Obs.count "c";
        Obs.observe "h" 1.0;
        Obs.set_attr "k" (Obs.Int 1))
  in
  Alcotest.(check bool) "trace stays empty when disabled" true
    (Obs.is_empty t)

let test_disabled_no_alloc () =
  Obs.set_enabled false;
  let thunk () = () in
  let v = 1.0 in
  (* warm-up so any one-time setup is out of the measured window *)
  for _ = 1 to 100 do
    Obs.span "hot" thunk;
    Obs.count "c";
    Obs.observe "h" v
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.span "hot" thunk;
    Obs.count "c";
    Obs.observe "h" v
  done;
  let dw = Gc.minor_words () -. w0 in
  (* tolerance covers the boxes of Gc.minor_words itself; 10k disabled
     probes must not allocate per call *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled probes allocate nothing (%.0f words)" dw)
    true (dw < 256.0)

(* ------------------------------------------------------------------ *)
(* spans, nesting, phases                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_enabled @@ fun () ->
  let (), t =
    Obs.collect (fun () ->
        Obs.span "a" (fun () ->
            Obs.span "b" (fun () -> ());
            Obs.span "b" (fun () -> Obs.span "c" (fun () -> ()))))
  in
  Alcotest.(check bool) "trace not empty" false (Obs.is_empty t);
  let names = List.map (fun (p : Obs.phase) -> p.Obs.name) (Obs.phases t) in
  Alcotest.(check (list string))
    "phases in first-seen pre-order" [ "a"; "b"; "c" ] names;
  let a = Option.get (phase_by_name t "a") in
  let b = Option.get (phase_by_name t "b") in
  Alcotest.(check int) "a called once" 1 a.Obs.calls;
  Alcotest.(check int) "b called twice" 2 b.Obs.calls;
  (* self time never exceeds total, and a's total covers its children *)
  Alcotest.(check bool) "self <= total" true
    (Int64.compare a.Obs.self_ns a.Obs.total_ns <= 0);
  Alcotest.(check bool) "root wall = a total" true
    (Int64.equal (Obs.root_wall_ns t) a.Obs.total_ns)

let test_span_exception_closes () =
  with_enabled @@ fun () ->
  let res, t =
    Obs.collect (fun () ->
        try Obs.span "boom" (fun () -> raise Exit) with Exit -> "caught")
  in
  Alcotest.(check string) "exception propagates" "caught" res;
  match phase_by_name t "boom" with
  | Some p -> Alcotest.(check int) "span closed once" 1 p.Obs.calls
  | None -> Alcotest.fail "span lost on exception"

let test_collect_isolation () =
  with_enabled @@ fun () ->
  let inner_ref = ref None in
  let (), outer =
    Obs.collect (fun () ->
        Obs.span "o" (fun () ->
            let (), inner = Obs.collect (fun () -> Obs.span "i" ignore) in
            inner_ref := Some inner))
  in
  let inner = Option.get !inner_ref in
  Alcotest.(check (list string))
    "inner trace sees only its own span" [ "i" ]
    (List.map (fun (p : Obs.phase) -> p.Obs.name) (Obs.phases inner));
  Alcotest.(check (list string))
    "outer trace does not absorb the inner one" [ "o" ]
    (List.map (fun (p : Obs.phase) -> p.Obs.name) (Obs.phases outer))

(* ------------------------------------------------------------------ *)
(* round attribution (the Rounds.charge hook)                          *)
(* ------------------------------------------------------------------ *)

let test_rounds_attribution () =
  with_enabled @@ fun () ->
  let r = Rounds.create () in
  let (), t =
    Obs.collect (fun () ->
        Obs.span "outer" (fun () ->
            Rounds.charge r ~label:"l1" 5;
            Obs.span "inner" (fun () -> Rounds.charge r ~label:"l2" 7));
        Rounds.charge r ~label:"l3" 2)
  in
  Alcotest.(check int) "ledger total" 14 (Rounds.total r);
  Alcotest.(check int) "trace total matches ledger" 14 (Obs.total_rounds t);
  Alcotest.(check int) "outside-span charge is unattributed" 2
    (Obs.unattributed_rounds t);
  let outer = Option.get (phase_by_name t "outer") in
  let inner = Option.get (phase_by_name t "inner") in
  Alcotest.(check int) "outer keeps only its self-rounds" 5 outer.Obs.rounds;
  Alcotest.(check int) "inner rounds" 7 inner.Obs.rounds;
  Alcotest.(check (list (pair string int)))
    "per-label split survives" [ ("l2", 7) ]
    inner.Obs.rounds_by_label;
  (* the BENCH invariant: phase self-rounds + unattributed = flat total *)
  let phase_sum =
    List.fold_left
      (fun acc (p : Obs.phase) -> acc + p.Obs.rounds)
      0 (Obs.phases t)
  in
  Alcotest.(check int) "phases + unattributed = total" (Obs.total_rounds t)
    (phase_sum + Obs.unattributed_rounds t)

(* ------------------------------------------------------------------ *)
(* counters and histograms                                             *)
(* ------------------------------------------------------------------ *)

let test_counters_histograms () =
  with_enabled @@ fun () ->
  let (), t =
    Obs.collect (fun () ->
        Obs.count "c";
        Obs.count "c" ~by:4;
        Obs.observe "h" 1.0;
        Obs.observe "h" 2.0;
        Obs.observe "h" 4.0)
  in
  Alcotest.(check (list (pair string int)))
    "counter sums" [ ("c", 5) ] (Obs.counters t);
  match Obs.histograms t with
  | [ ("h", h) ] ->
      Alcotest.(check int) "count" 3 h.Obs.count;
      Alcotest.(check (float 1e-9)) "sum" 7.0 h.Obs.sum;
      Alcotest.(check (float 1e-9)) "min" 1.0 h.Obs.min;
      Alcotest.(check (float 1e-9)) "max" 4.0 h.Obs.max;
      Alcotest.(check int) "buckets cover every observation" 3
        (List.fold_left (fun acc (_, c) -> acc + c) 0 h.Obs.buckets)
  | other ->
      Alcotest.failf "expected one histogram, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* exports                                                             *)
(* ------------------------------------------------------------------ *)

let sample_trace () =
  let r = Rounds.create () in
  let (), t =
    Obs.collect (fun () ->
        Obs.span "root" ~attrs:[ ("k", Obs.Str "v") ] (fun () ->
            Obs.span "child" (fun () -> Rounds.charge r ~label:"lbl" 3);
            Obs.set_attr "colors_used" (Obs.Int 7));
        Obs.count "msgs" ~by:2;
        Obs.observe "len" 5.0)
  in
  t

let test_chrome_export_wellformed () =
  with_enabled @@ fun () ->
  let t = sample_trace () in
  let b = Buffer.create 1024 in
  Obs.Export.chrome b [ t ];
  let json = J.parse (Buffer.contents b) in
  let events =
    match Option.bind (J.member "traceEvents" json) J.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "missing traceEvents"
  in
  Alcotest.(check int) "one event per span" 2 (List.length events);
  List.iter
    (fun ev ->
      (match Option.bind (J.member "ph" ev) J.to_string with
      | Some "X" -> ()
      | _ -> Alcotest.fail "not a complete event");
      (match Option.bind (J.member "name" ev) J.to_string with
      | Some ("root" | "child") -> ()
      | _ -> Alcotest.fail "unexpected event name");
      match
        ( Option.bind (J.member "ts" ev) J.to_float,
          Option.bind (J.member "dur" ev) J.to_float )
      with
      | Some ts, Some dur ->
          Alcotest.(check bool) "ts/dur nonnegative" true
            (ts >= 0.0 && dur >= 0.0)
      | _ -> Alcotest.fail "missing ts/dur")
    events;
  (* attributes and rounds surface under args *)
  let root =
    List.find
      (fun ev ->
        Option.bind (J.member "name" ev) J.to_string = Some "root")
      events
  in
  let args = Option.get (J.member "args" root) in
  Alcotest.(check (option string)) "attr exported" (Some "v")
    (Option.bind (J.member "k" args) J.to_string);
  Alcotest.(check (option int)) "late attr exported" (Some 7)
    (Option.bind (J.member "colors_used" args) J.to_int);
  let child =
    List.find
      (fun ev ->
        Option.bind (J.member "name" ev) J.to_string = Some "child")
      events
  in
  let cargs = Option.get (J.member "args" child) in
  Alcotest.(check (option int)) "self-rounds exported" (Some 3)
    (Option.bind (J.member "rounds_self" cargs) J.to_int)

let test_jsonl_export_wellformed () =
  with_enabled @@ fun () ->
  let t = sample_trace () in
  let b = Buffer.create 1024 in
  Obs.Export.jsonl b [ t ];
  let lines =
    String.split_on_char '\n' (Buffer.contents b)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "several events" true (List.length lines >= 4);
  let kinds =
    List.map
      (fun line ->
        let json = J.parse line in
        match Option.bind (J.member "type" json) J.to_string with
        | Some k -> k
        | None -> Alcotest.fail "jsonl line without a type")
      lines
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "kind %s present" k)
        true (List.mem k kinds))
    [ "span"; "counter"; "histogram" ]

let () =
  Alcotest.run "nw_obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "passthrough" `Quick test_disabled_passthrough;
          Alcotest.test_case "no allocation" `Quick test_disabled_no_alloc;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception" `Quick test_span_exception_closes;
          Alcotest.test_case "collect isolation" `Quick
            test_collect_isolation;
        ] );
      ( "rounds",
        [ Alcotest.test_case "attribution" `Quick test_rounds_attribution ] );
      ( "metrics",
        [
          Alcotest.test_case "counters+histograms" `Quick
            test_counters_histograms;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome" `Quick test_chrome_export_wellformed;
          Alcotest.test_case "jsonl" `Quick test_jsonl_export_wellformed;
        ] );
    ]
