(* Cross-cutting randomized properties over the whole stack: every
   algorithm, fed random instances, must produce verifier-clean outputs
   with the advertised resource bounds. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module O = Nw_graphs.Orientation
module Arb = Nw_graphs.Arboricity
module Io = Nw_graphs.Graph_io
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify
module ND = Nw_core.Net_decomp

let rng seed = Random.State.make [| seed; 0xcafe |]

let prop_io_roundtrip =
  QCheck.Test.make ~name:"edge-list roundtrip preserves the graph" ~count:100
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 1 + Random.State.int st 40 in
      let g = Gen.erdos_renyi st n 0.2 in
      let g' = Io.parse_edge_list (Io.to_edge_list g) in
      G.n g = G.n g' && G.edges g = G.edges g')

let prop_net_decomp_valid =
  QCheck.Test.make ~name:"network decomposition valid at distances 1..3"
    ~count:40 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 10 + Random.State.int st 50 in
      let g = Gen.erdos_renyi st n 0.08 in
      let distance = 1 + Random.State.int st 3 in
      let rounds = Rounds.create () in
      let nd = ND.compute g ~rng:st ~rounds ~distance in
      ND.check_valid g ~distance nd = Ok ())

let prop_mpx_covers_and_connects =
  QCheck.Test.make ~name:"mpx labels everyone with connected clusters"
    ~count:40 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 10 + Random.State.int st 60 in
      let g = Gen.erdos_renyi st n 0.1 in
      let rounds = Rounds.create () in
      let labels = ND.mpx g ~rng:st ~beta:0.3 ~rounds in
      let all_labeled = Array.for_all (fun l -> l >= 0) labels in
      let module UF = Nw_graphs.Union_find in
      let uf = UF.create n in
      G.fold_edges
        (fun _ u v () ->
          if labels.(u) = labels.(v) then ignore (UF.union uf u v))
        g ();
      let connected = ref true in
      let rep = Hashtbl.create 16 in
      Array.iteri
        (fun v l ->
          match Hashtbl.find_opt rep l with
          | None -> Hashtbl.add rep l (UF.find uf v)
          | Some r -> if UF.find uf v <> r then connected := false)
        labels;
      all_labeled && !connected)

let prop_diameter_reduction =
  QCheck.Test.make ~name:"diameter reduction: valid, bounded, kept colors"
    ~count:15 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let alpha = 2 + Random.State.int st 3 in
      let n = 60 + Random.State.int st 80 in
      let g = Gen.forest_union st n alpha in
      match Nw_baseline.Gabow_westermann.forest_partition g alpha with
      | Error _ -> false
      | Ok exact ->
          let rounds = Rounds.create () in
          let epsilon = 1.0 in
          let ids = Array.init n (fun v -> v) in
          let reduced, _ =
            Nw_core.Diameter_reduction.reduce exact ~target:`Inv_eps ~epsilon
              ~alpha ~ids ~rng:st ~rounds
          in
          let z = int_of_float (ceil (40.0 /. epsilon)) in
          Verify.forest_decomposition reduced = Ok ()
          && Verify.max_forest_diameter reduced <= 2 * z
          (* kept edges keep their original colors *)
          && G.fold_edges
               (fun e _ _ acc ->
                 acc
                 &&
                 match (Coloring.color exact e, Coloring.color reduced e) with
                 | Some c, Some c' -> c' = c || c' >= Coloring.colors exact
                 | _, None -> false
                 | None, Some _ -> true)
               g true)

let prop_sfd_random_simple =
  QCheck.Test.make ~name:"section 5 SFD valid on random simple graphs"
    ~count:15 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let alpha = 3 + Random.State.int st 4 in
      let n = 8 * alpha in
      let g = Gen.forest_union_simple st n alpha in
      let rounds = Rounds.create () in
      let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
      let orientation = Nw_core.Orient.of_forest_decomposition fd ~rounds in
      let ids = Array.init n (fun v -> v) in
      let sfd, _ =
        Nw_core.Star_forest.sfd g ~epsilon:0.4 ~alpha ~orientation ~ids
          ~rng:st ~rounds
      in
      Verify.star_forest_decomposition sfd = Ok ())

let prop_lsfd_greedy_random =
  QCheck.Test.make ~name:"theorem 2.2 greedy LSFD on random graphs" ~count:40
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 6 + Random.State.int st 20 in
      let g = Gen.erdos_renyi st n 0.3 in
      if G.m g = 0 then true
      else begin
        let dgn = Nw_graphs.Degeneracy.degeneracy g in
        let colors = (4 * dgn) + 2 in
        let lists = Gen.list_palettes st g ~colors ~size:(2 * dgn) in
        let palette = Palette.of_lists ~colors lists in
        let coloring = Nw_core.Lsfd.greedy_degeneracy g palette in
        Verify.star_forest_decomposition coloring = Ok ()
        && Verify.respects_palette coloring palette = Ok ()
      end)

let prop_orientation_bound =
  QCheck.Test.make
    ~name:"orientation out-degree never exceeds the color count" ~count:25
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 10 + Random.State.int st 40 in
      let g = Gen.erdos_renyi st n 0.3 in
      if G.m g = 0 then true
      else begin
        let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
        let rounds = Rounds.create () in
        let o = Nw_core.Orient.of_forest_decomposition fd ~rounds in
        O.max_out_degree o <= Coloring.colors fd
      end)

let prop_pseudo_forest_valid =
  QCheck.Test.make ~name:"pseudo-forest assignments verify" ~count:25
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 8 + Random.State.int st 20 in
      let g = Gen.erdos_renyi st n 0.4 in
      if G.m g = 0 then true
      else begin
        let _, o = Arb.pseudo_arboricity g in
        let assignment, k = Nw_core.Pseudo_forest.of_orientation o in
        Verify.pseudo_forest_assignment g assignment ~k = Ok ()
      end)

let prop_h_partition_random =
  QCheck.Test.make ~name:"H-partition bounds on random graphs" ~count:25
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 10 + Random.State.int st 60 in
      let g = Gen.erdos_renyi st n 0.15 in
      let alpha_star, _ = Arb.pseudo_arboricity g in
      let alpha_star = max 1 alpha_star in
      let rounds = Rounds.create () in
      let hp =
        Nw_core.H_partition.compute g ~epsilon:0.5 ~alpha_star ~rounds
      in
      let t = hp.Nw_core.H_partition.threshold in
      let layer = hp.Nw_core.H_partition.layer in
      let ok = ref true in
      for v = 0 to n - 1 do
        let later =
          Array.fold_left
            (fun acc (w, _) -> if layer.(w) >= layer.(v) then acc + 1 else acc)
            0 (G.incident g v)
        in
        if later > t then ok := false
      done;
      !ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "nw_props"
    [
      qsuite "io" [ prop_io_roundtrip ];
      qsuite "net_decomp" [ prop_net_decomp_valid; prop_mpx_covers_and_connects ];
      qsuite "diameter" [ prop_diameter_reduction ];
      qsuite "star" [ prop_sfd_random_simple; prop_lsfd_greedy_random ];
      qsuite "orientation" [ prop_orientation_bound; prop_pseudo_forest_valid ];
      qsuite "h_partition" [ prop_h_partition_random ];
    ]
