(* nw-wire/1 + daemon-core tests (lib/service).

   Four contracts are pinned here without opening a socket:

   - framing: length-prefixed frames round-trip byte-exactly, including
     payloads carrying hostile strings (quotes, control bytes, raw
     newlines inside the frame body), and every desynchronized prefix is
     a Wire.Protocol_error, never a crash or a silent resync;
   - the request handler: malformed payloads are answered with
     ok:false error frames and the server state stays fully usable
     afterwards (the daemon never dies with a connection);
   - the session model: epochs grow strictly monotonically across every
     mutating request, and churn answers are incremental exactly when a
     palette color admits the edge, with a correct fallback otherwise;
   - golden equivalence: a served decompose is byte-identical to the
     one-shot engine sequence forestd runs for the same graph and seed,
     and Coloring.extend/connected agree with a from-scratch oracle. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify
module Rounds = Nw_localsim.Rounds
module Engine = Nw_engine.Engine
module Store = Nw_engine.Store
module Artifact = Nw_engine.Artifact
module Registry = Nw_engine.Registry
module Wire = Nw_service.Wire
module Session = Nw_service.Session
module Server = Nw_service.Server
module J = Nw_obs.Json_lite

let rng seed = Random.State.make [| seed |]

(* push a string through a real channel pair so read_frame sees exactly
   what write_frame produced *)
let channel_round_trip payloads =
  let fname = Filename.temp_file "nw_wire_test" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove fname with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin fname in
      List.iter (Wire.write_frame oc) payloads;
      close_out oc;
      let ic = open_in_bin fname in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec drain acc =
            match Wire.read_frame ic with
            | Some p -> drain (p :: acc)
            | None -> List.rev acc
          in
          drain []))

let read_raw bytes =
  let fname = Filename.temp_file "nw_wire_test" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove fname with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin fname in
      output_string oc bytes;
      close_out oc;
      let ic = open_in_bin fname in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Wire.read_frame ic))

(* --- framing ------------------------------------------------------- *)

let hostile_strings =
  [
    "plain";
    "with \"quotes\" and \\ backslashes";
    "control \001 \t bytes";
    "newline\nin the middle";
    "unicode \xc3\xa9\xe2\x88\x80 bytes";
    String.make 300 '{';
  ]

let frame_round_trip () =
  let payloads =
    ""
    :: "{\"id\":1}"
    :: List.map (fun s -> "{\"s\":" ^ J.Emit.string_value s ^ "}")
         hostile_strings
  in
  Alcotest.(check (list string))
    "frames round-trip byte-exactly" payloads
    (channel_round_trip payloads)

let frame_hostile_parse () =
  List.iter
    (fun s ->
      let payload =
        Printf.sprintf "{\"id\":7,\"op\":\"load-graph\",\"session\":%s,\
                        \"n\":2,\"edges\":[[0,1]]}"
          (J.Emit.string_value s)
      in
      match channel_round_trip [ payload ] with
      | [ back ] -> (
          match Wire.parse_request back with
          | Ok { Wire.id = 7; request = Wire.Load_graph { session; _ } } ->
              Alcotest.(check string) "hostile session survives" s session
          | Ok _ -> Alcotest.fail "wrong request parsed"
          | Error e -> Alcotest.fail ("hostile string broke parse: " ^ e))
      | _ -> Alcotest.fail "frame did not round-trip")
    hostile_strings

let frame_malformed () =
  let rejected bytes =
    match read_raw bytes with
    | exception Wire.Protocol_error _ -> ()
    | Some _ -> Alcotest.fail ("accepted malformed frame: " ^ String.escaped bytes)
    | None -> Alcotest.fail ("EOF instead of error: " ^ String.escaped bytes)
  in
  rejected "xyz\n{}\n";              (* unparsable length prefix *)
  rejected "-4\n{}\n";               (* negative length *)
  rejected "999999999999\n{}\n";     (* over max_frame_bytes *)
  rejected "10\n{}\n";               (* truncated payload *)
  rejected "2\n{}X";                 (* missing newline terminator *)
  rejected "2\n{}";                  (* truncated terminator *)
  Alcotest.(check (option string)) "clean EOF is None" None (read_raw "")

let response_builders () =
  let r = Wire.response_ok ~id:3 [ Wire.str "x" "a\"b"; Wire.int "k" 9 ] in
  let json = J.parse r in
  Alcotest.(check (option int)) "id" (Some 3)
    (Option.bind (J.member "id" json) J.to_int);
  Alcotest.(check (option string)) "escaped field" (Some "a\"b")
    (Option.bind (J.member "x" json) J.to_string);
  let e = Wire.response_error ~id:None ~code:"bad-request" ~detail:"d" in
  let json = J.parse e in
  Alcotest.(check bool) "null id" true (J.member "id" json = Some J.Null);
  Alcotest.(check (option string)) "code" (Some "bad-request")
    (Option.bind (J.member "error" json) J.to_string);
  Alcotest.(check string) "int_array renders -1 as null" "[0,null,2]"
    (Wire.int_array [| 0; -1; 2 |])

(* --- the request handler ------------------------------------------- *)

let state () = Server.create_state ()

let send st payload =
  let resp, verdict = Server.handle st payload in
  (match verdict with
  | `Shutdown -> Alcotest.fail "unexpected shutdown verdict"
  | `Continue -> ());
  J.parse resp

let ok_resp json =
  match J.member "ok" json with Some (J.Bool b) -> b | _ -> false

let req ?(extra = "") ~id op =
  Printf.sprintf "{\"id\":%d,\"op\":\"%s\"%s}" id op extra

let handler_survives_malformed () =
  let st = state () in
  let garbage =
    [
      "not json at all";
      "{\"op\":\"hello\"}";                 (* missing id *)
      "{\"id\":1,\"op\":\"warp\"}";         (* unknown op *)
      "{\"id\":2,\"op\":\"decompose\"}";    (* missing fields *)
      "{\"id\":\"x\",\"op\":\"stats\"}";    (* non-integer id *)
    ]
  in
  List.iter
    (fun p ->
      let json = send st p in
      Alcotest.(check bool)
        (Printf.sprintf "rejected: %s" p)
        false (ok_resp json))
    garbage;
  (* the state survives: a well-formed request still succeeds and the
     error tally reflects every rejection *)
  let json =
    send st (req ~id:9 "hello" ~extra:(",\"proto\":\"" ^ Wire.proto ^ "\""))
  in
  Alcotest.(check bool) "hello works after garbage" true (ok_resp json);
  Alcotest.(check int) "errors counted" (List.length garbage)
    (Server.errors st)

let load_extra n edges =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf ",\"session\":\"s\",\"n\":%d,\"edges\":[" n);
  List.iteri
    (fun i (u, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d]" u v))
    edges;
  Buffer.add_string b "]";
  Buffer.contents b

let epoch_of json =
  match Option.bind (J.member "epoch" json) J.to_int with
  | Some e -> e
  | None -> Alcotest.fail "response without epoch"

let handler_epoch_monotone () =
  let st = state () in
  let json = send st (req ~id:1 "load-graph" ~extra:(load_extra 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ])) in
  Alcotest.(check bool) "load ok" true (ok_resp json);
  let e1 = epoch_of json in
  let batch =
    ",\"session\":\"s\",\"algorithm\":\"augment\",\"seed\":5,\"alpha\":1"
  in
  let epochs =
    List.map
      (fun (id, op, extra) ->
        let json = send st (req ~id op ~extra) in
        Alcotest.(check bool) (op ^ " ok") true (ok_resp json);
        epoch_of json)
      [
        (2, "decompose", batch);
        (3, "insert-edge", ",\"session\":\"s\",\"u\":0,\"v\":2");
        (4, "delete-edge", ",\"session\":\"s\",\"edge\":0");
        (5, "decompose", batch);
      ]
  in
  let all = e1 :: epochs in
  List.iteri
    (fun i e ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "epoch strictly grows at step %d" i)
          true
          (e > List.nth all (i - 1)))
    all

let handler_error_codes () =
  let st = state () in
  let code json =
    Option.value ~default:"?"
      (Option.bind (J.member "error" json) J.to_string)
  in
  let json = send st (req ~id:1 "stats" ~extra:",\"session\":\"ghost\"") in
  Alcotest.(check string) "unknown session" "unknown-session" (code json);
  let json = send st (req ~id:2 "load-graph" ~extra:(load_extra 3 [ (0, 1) ])) in
  Alcotest.(check bool) "load ok" true (ok_resp json);
  let json =
    send st
      (req ~id:3 "decompose" ~extra:",\"session\":\"s\",\"algorithm\":\"nope\"")
  in
  Alcotest.(check string) "unknown algorithm" "unknown-algorithm" (code json);
  let json =
    send st
      (req ~id:4 "decompose"
         ~extra:",\"session\":\"s\",\"algorithm\":\"orientation\"")
  in
  Alcotest.(check string) "orientation via decompose" "wrong-op" (code json);
  let json =
    send st (req ~id:5 "insert-edge" ~extra:",\"session\":\"s\",\"u\":0,\"v\":9")
  in
  Alcotest.(check string) "endpoint range" "bad-edge" (code json)

(* --- golden equivalence with the one-shot engine sequence ----------- *)

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.fail ("registry lost entry " ^ name)

(* the one-shot sequence of `forestd decompose`, run directly *)
let one_shot g ~name ~epsilon ~seed ~alpha =
  let e = entry name in
  let pipeline = e.Registry.build { Registry.graph = g; epsilon; alpha } in
  let ctx = Engine.ctx ~rng:(rng seed) ~rounds:(Rounds.create ()) in
  let init = Store.put Store.empty "graph" (Artifact.Graph g) in
  let store = Engine.run ctx pipeline ~init in
  Store.coloring store "coloring"

let served_equals_one_shot () =
  let g = Gen.forest_union (rng 41) 80 3 in
  let edges = Array.to_list (G.edges g) in
  let s = Session.create ~name:"golden" ~n:(G.n g) ~edges in
  let epsilon = 0.5 and seed = 2021 and alpha = 3 in
  match
    Session.decompose s ~entry:(entry "augment") ~epsilon ~seed
      ~alpha:(Some alpha)
  with
  | Error e -> Alcotest.fail ("served decompose failed: " ^ e)
  | Ok d -> (
      (match d.Session.d_verified with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("served output unverified: " ^ e));
      match d.Session.d_output with
      | Session.Colored { slot_colors; colors_used } ->
          let expected = one_shot g ~name:"augment" ~epsilon ~seed ~alpha in
          Alcotest.(check int) "colors_used matches one-shot"
            (Verify.colors_used expected) colors_used;
          Array.iteri
            (fun e c ->
              Alcotest.(check (option int))
                (Printf.sprintf "edge %d color" e)
                (Coloring.color expected e)
                (if c < 0 then None else Some c))
            slot_colors
      | _ -> Alcotest.fail "augment must yield a coloring")

let served_deterministic () =
  let mk () =
    let g = Gen.forest_union (rng 43) 60 2 in
    let s =
      Session.create ~name:"d" ~n:(G.n g)
        ~edges:(Array.to_list (G.edges g))
    in
    match
      Session.decompose s ~entry:(entry "augment") ~epsilon:0.5 ~seed:7
        ~alpha:(Some 2)
    with
    | Ok { Session.d_output = Session.Colored { slot_colors; _ }; _ } ->
        slot_colors
    | Ok _ -> Alcotest.fail "expected a coloring"
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (array int)) "same seed, same served bytes" (mk ()) (mk ())

(* --- churn: incremental vs fallback -------------------------------- *)

let churn_incremental_then_fallback () =
  (* line multigraph on 2 vertices with 3 parallel edges: α = 3 exactly
     and every forest holds exactly one of the parallel edges, so the
     palette has no room for a fourth — the next insert must fall back
     (and the fallback re-resolves α = 4 on the grown graph) *)
  let s =
    Session.create ~name:"c" ~n:2 ~edges:[ (0, 1); (0, 1); (0, 1) ]
  in
  (match
     Session.decompose s ~entry:(entry "exact") ~epsilon:0.5 ~seed:3
       ~alpha:None
   with
  | Ok d -> Alcotest.(check int) "alpha resolved" 3 d.Session.d_alpha
  | Error e -> Alcotest.fail e);
  (match Session.insert_edge s ~u:0 ~v:1 with
  | Ok c ->
      Alcotest.(check string) "parallel insert falls back" "fallback"
        (Session.mode_label c.Session.ch_mode)
  | Error e -> Alcotest.fail ("fallback insert failed: " ^ e));
  Alcotest.(check int) "fallback counted" 1 (Session.fallbacks s);
  Alcotest.(check int) "all four edges live" 4 (Session.live_edges s);
  (* a tree edge on a fresh vertexless spot: trivially incremental *)
  let s2 =
    Session.create ~name:"c2" ~n:4 ~edges:[ (0, 1); (1, 2) ]
  in
  (match
     Session.decompose s2 ~entry:(entry "augment") ~epsilon:0.5 ~seed:3
       ~alpha:(Some 1)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Session.insert_edge s2 ~u:2 ~v:3 with
  | Ok c ->
      Alcotest.(check string) "tree insert is incremental" "incremental"
        (Session.mode_label c.Session.ch_mode)
  | Error e -> Alcotest.fail e);
  (match Session.delete_edge s2 ~edge:0 with
  | Ok c ->
      Alcotest.(check string) "delete is incremental" "incremental"
        (Session.mode_label c.Session.ch_mode)
  | Error e -> Alcotest.fail e);
  match Session.delete_edge s2 ~edge:0 with
  | Ok _ -> Alcotest.fail "double delete must be rejected"
  | Error _ -> ()

(* --- Coloring.extend / connected differential ----------------------- *)

(* naive oracle: u and v are connected in color c iff a DFS over the
   edges of color c reaches v from u *)
let oracle_connected g col c u v =
  let n = G.n g in
  let adj = Array.make n [] in
  for e = 0 to G.m g - 1 do
    if Coloring.color col e = Some c then begin
      let a, b = G.endpoints g e in
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b)
    end
  done;
  let seen = Array.make n false in
  let rec dfs x =
    if not seen.(x) then begin
      seen.(x) <- true;
      List.iter dfs adj.(x)
    end
  in
  dfs u;
  seen.(v)

let extend_connected_differential () =
  let st = rng 51 in
  let g = Gen.forest_union st 40 2 in
  let colors = 3 in
  let col = Coloring.create g ~colors in
  (* a valid-by-construction partial coloring: greedily place each edge
     in the first color whose forest it does not close a cycle in *)
  for e = 0 to G.m g - 1 do
    let u, v = G.endpoints g e in
    let rec place c =
      if c < colors then
        if not (Coloring.connected col c u v) then Coloring.set col e c
        else place (c + 1)
    in
    place 0
  done;
  (* grow the graph by fresh random edges and carry the cache over *)
  let b = G.create_builder (G.n g) in
  Array.iter (fun (u, v) -> ignore (G.add_edge b u v)) (G.edges g);
  for _ = 1 to 15 do
    let u = Random.State.int st (G.n g) in
    let v = (u + 1 + Random.State.int st (G.n g - 1)) mod G.n g in
    ignore (G.add_edge b u v)
  done;
  let g' = G.build b in
  let col' = Coloring.extend col g' in
  (* old assignments survive verbatim *)
  for e = 0 to G.m g - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "edge %d color preserved" e)
      (Coloring.color col e) (Coloring.color col' e)
  done;
  (* connectivity answers match the DFS oracle on the grown graph, for
     every color, across a seeded sample of vertex pairs *)
  for _ = 1 to 200 do
    let u = Random.State.int st (G.n g') in
    let v = Random.State.int st (G.n g') in
    for c = 0 to colors - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "connected(%d) %d-%d matches oracle" c u v)
        (oracle_connected g' col' c u v)
        (Coloring.connected col' c u v)
    done
  done

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "service"
    [
      ( "wire",
        List.map tc
          [
            ("frame round-trip", frame_round_trip);
            ("hostile strings", frame_hostile_parse);
            ("malformed frames", frame_malformed);
            ("response builders", response_builders);
          ] );
      ( "handler",
        List.map tc
          [
            ("survives malformed payloads", handler_survives_malformed);
            ("epoch monotonicity", handler_epoch_monotone);
            ("error codes", handler_error_codes);
          ] );
      ( "golden",
        List.map tc
          [
            ("served = one-shot", served_equals_one_shot);
            ("served deterministic", served_deterministic);
          ] );
      ( "churn",
        List.map tc
          [
            ("incremental vs fallback", churn_incremental_then_fallback);
            ("extend/connected differential", extend_connected_differential);
          ] );
    ]
