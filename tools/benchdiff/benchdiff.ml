(* Bench-trajectory regression gate:

     benchdiff --base OLD/BENCH_*.json --new NEW/BENCH_*.json
       [--wall-threshold PCT] [--rounds-tolerance N]
       [--throughput-threshold PCT] [--json]

   Loads two sets of nw-bench records, aligns them by
   (exp, env.backend), and compares the trajectory-bearing metrics:

     wall_s          regression when new > base * (1 + wall-threshold%)
     charged_rounds  regression when |new - base| > rounds-tolerance
                     (charged rounds are deterministic per seed; any
                     drift is an attribution or algorithm change, not
                     noise — default tolerance 0)
     connectivity    uf_queries / bfs_runs / uf_rebuilds, same exact
                     contract as charged_rounds
     failed          regression when the new record carries a non-null
                     failure and the base does not
     throughput legs aligned by (instance, backend, domains, edges);
                     regression when edges_per_sec <
                     base * (1 - throughput-threshold%)
     service         invalid / errors counts must not grow (a served
                     response that fails client-side validation is a
                     correctness bug, not noise); per-class p99 latency
                     is a regression when new > base *
                     (1 + service-threshold%); incremental_speedup is a
                     regression when new < base / (1 + speedup-threshold%)

   Wall-clock comparisons are skipped (with a note) when the two
   records disagree on quick/domains — the numbers are not comparable.
   Keys present on only one side are reported but never fail the gate:
   a trajectory is allowed to grow experiments. Exit 0 when clean, 1 on
   any regression, 2 on usage or parse errors. *)

module J = Nw_obs.Json_lite

type leg = {
  leg_instance : string; (* which timed pipeline; "-" on legacy records *)
  leg_backend : string;
  leg_domains : int;
  leg_edges : int;
  leg_eps : float;
}

type service = {
  sv_invalid : int;
  sv_errors : int;
  sv_p99 : (string * float) list; (* per request class *)
  sv_speedup : float option; (* mean batch / mean churn; null when absent *)
}

type run = {
  r_file : string;
  r_exp : string;
  r_backend : string option;
  r_quick : bool;
  r_domains : int;
  r_wall : float;
  r_rounds : int;
  r_conn : (string * int) list;
  r_failed : bool;
  r_legs : leg list;
  r_service : service option;
}

let usage () =
  prerr_endline
    "usage: benchdiff --base BENCH.json ... --new BENCH.json ...\n\
    \       [--wall-threshold PCT] [--rounds-tolerance N]\n\
    \       [--throughput-threshold PCT] [--service-threshold PCT]\n\
    \       [--speedup-threshold PCT] [--json]";
  exit 2

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("benchdiff: " ^ m); exit 2) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      match really_input_string ic len with
      | s -> s
      (* a file shrinking between the length query and the read (e.g. a
         bench run truncated mid-write) must be a diagnostic, not a
         backtrace *)
      | exception End_of_file -> die "%s: truncated while reading" path)

let jint json field = Option.bind (J.member field json) J.to_int
let jfloat json field = Option.bind (J.member field json) J.to_float
let jstr json field = Option.bind (J.member field json) J.to_string

let load_run file =
  match J.parse (read_file file) with
  | exception J.Parse_error msg -> die "%s: invalid JSON: %s" file msg
  | exception Sys_error msg -> die "unreadable: %s" msg
  | json ->
      (match jstr json "schema" with
      | Some ("nw-bench/1" | "nw-bench/2") -> ()
      | Some other -> die "%s: unknown schema %S" file other
      | None -> die "%s: missing schema tag" file);
      let need_int f =
        match jint json f with
        | Some v -> v
        | None -> die "%s: missing numeric field %S" file f
      in
      let need_float f =
        match jfloat json f with
        | Some v -> v
        | None -> die "%s: missing numeric field %S" file f
      in
      let conn =
        match J.member "connectivity" json with
        | Some (J.Obj _ as c) ->
            List.filter_map
              (fun f -> Option.map (fun v -> (f, v)) (jint c f))
              [ "uf_queries"; "bfs_runs"; "uf_rebuilds" ]
        | _ -> []
      in
      let service =
        match J.member "service" json with
        | Some (J.Obj _ as svc) -> (
            match (jint svc "invalid", jint svc "errors") with
            | Some inv, Some errs ->
                let p99 =
                  match J.member "latency_ms" svc with
                  | Some (J.List ls) ->
                      List.filter_map
                        (fun l ->
                          match (jstr l "class", jfloat l "p99") with
                          | Some cls, Some p -> Some (cls, p)
                          | _ -> None)
                        ls
                  | _ -> []
                in
                Some
                  {
                    sv_invalid = inv;
                    sv_errors = errs;
                    sv_p99 = p99;
                    sv_speedup = jfloat svc "incremental_speedup";
                  }
            | _ -> None)
        | _ -> None
      in
      let legs =
        match J.member "throughput" json with
        | Some (J.List ls) ->
            List.filter_map
              (fun l ->
                match
                  ( jstr l "backend",
                    jint l "domains",
                    jint l "edges",
                    jfloat l "edges_per_sec" )
                with
                | Some b, Some d, Some e, Some eps ->
                    Some
                      {
                        leg_instance =
                          Option.value (jstr l "instance") ~default:"-";
                        leg_backend = b;
                        leg_domains = d;
                        leg_edges = e;
                        leg_eps = eps;
                      }
                | _ -> None)
              ls
        | _ -> []
      in
      {
        r_file = file;
        r_exp =
          (match jstr json "exp" with
          | Some e -> e
          | None -> die "%s: missing field \"exp\"" file);
        r_backend =
          Option.bind (J.member "env" json) (fun env -> jstr env "backend");
        r_quick =
          (match J.member "quick" json with
          | Some (J.Bool b) -> b
          | _ -> false);
        r_domains = need_int "domains";
        r_wall = need_float "wall_s";
        r_rounds = need_int "charged_rounds";
        r_conn = conn;
        r_failed =
          (match J.member "failed" json with
          | None | Some J.Null -> false
          | Some _ -> true);
        r_legs = legs;
        r_service = service;
      }

let key r =
  r.r_exp ^ "/" ^ Option.value r.r_backend ~default:"-"

(* one comparison row of the delta table / JSON report *)
type row = {
  row_key : string;
  row_metric : string;
  row_base : float;
  row_new : float;
  row_verdict : string; (* "ok" | "regression" | "skipped" *)
  row_note : string;
}

let pct_delta base v =
  if base = 0.0 then if v = 0.0 then 0.0 else infinity
  else (v -. base) /. base *. 100.0

let compare_runs ~wall_pct ~rounds_tol ~tp_pct ~svc_pct ~spd_pct base neu =
  let rows = ref [] in
  let push r = rows := r :: !rows in
  let k = key base in
  (* wall clock: only meaningful when the run configuration matches *)
  if base.r_quick <> neu.r_quick || base.r_domains <> neu.r_domains then
    push
      {
        row_key = k;
        row_metric = "wall_s";
        row_base = base.r_wall;
        row_new = neu.r_wall;
        row_verdict = "skipped";
        row_note = "quick/domains mismatch; wall not comparable";
      }
  else begin
    let limit = base.r_wall *. (1.0 +. (wall_pct /. 100.0)) in
    push
      {
        row_key = k;
        row_metric = "wall_s";
        row_base = base.r_wall;
        row_new = neu.r_wall;
        row_verdict = (if neu.r_wall > limit then "regression" else "ok");
        row_note = Printf.sprintf "threshold +%g%%" wall_pct;
      }
  end;
  let exact metric b n =
    push
      {
        row_key = k;
        row_metric = metric;
        row_base = float_of_int b;
        row_new = float_of_int n;
        row_verdict = (if abs (n - b) > rounds_tol then "regression" else "ok");
        row_note =
          (if rounds_tol = 0 then "exact" else Printf.sprintf "tolerance %d" rounds_tol);
      }
  in
  exact "charged_rounds" base.r_rounds neu.r_rounds;
  List.iter
    (fun (f, b) ->
      match List.assoc_opt f neu.r_conn with
      | Some n -> exact ("connectivity." ^ f) b n
      | None -> ())
    base.r_conn;
  if neu.r_failed && not base.r_failed then
    push
      {
        row_key = k;
        row_metric = "failed";
        row_base = 0.0;
        row_new = 1.0;
        row_verdict = "regression";
        row_note = "new record carries a failure";
      };
  List.iter
    (fun bl ->
      let matches l =
        String.equal l.leg_instance bl.leg_instance
        && String.equal l.leg_backend bl.leg_backend
        && l.leg_domains = bl.leg_domains
        && l.leg_edges = bl.leg_edges
      in
      match List.find_opt matches neu.r_legs with
      | None -> ()
      | Some nl ->
          let floor = bl.leg_eps *. (1.0 -. (tp_pct /. 100.0)) in
          push
            {
              row_key =
                Printf.sprintf "%s[%s %s x%d %de]" k bl.leg_instance
                  bl.leg_backend bl.leg_domains bl.leg_edges;
              row_metric = "edges_per_sec";
              row_base = bl.leg_eps;
              row_new = nl.leg_eps;
              row_verdict = (if nl.leg_eps < floor then "regression" else "ok");
              row_note = Printf.sprintf "threshold -%g%%" tp_pct;
            })
    base.r_legs;
  (match (base.r_service, neu.r_service) with
  | Some bs, Some ns ->
      (* validity counts gate exactly: a served response that fails
         client-side validation (or a daemon-side handler error) is a
         correctness bug, so growth is a regression at any magnitude *)
      let counter metric b n =
        push
          {
            row_key = k;
            row_metric = metric;
            row_base = float_of_int b;
            row_new = float_of_int n;
            row_verdict = (if n > b then "regression" else "ok");
            row_note = "must not grow";
          }
      in
      counter "service.invalid" bs.sv_invalid ns.sv_invalid;
      counter "service.errors" bs.sv_errors ns.sv_errors;
      List.iter
        (fun (cls, bp) ->
          match List.assoc_opt cls ns.sv_p99 with
          | None -> ()
          | Some np ->
              let limit = bp *. (1.0 +. (svc_pct /. 100.0)) in
              push
                {
                  row_key = Printf.sprintf "%s[%s]" k cls;
                  row_metric = "service.p99_ms";
                  row_base = bp;
                  row_new = np;
                  row_verdict = (if np > limit then "regression" else "ok");
                  row_note = Printf.sprintf "threshold +%g%%" svc_pct;
                })
        bs.sv_p99;
      (* incremental_speedup is higher-is-better: a drop past the
         threshold means churn answers stopped paying for themselves
         (e.g. the incremental path silently falling back to full
         re-decomposition) *)
      (match (bs.sv_speedup, ns.sv_speedup) with
      | Some bsp, Some nsp ->
          let floor = bsp /. (1.0 +. (spd_pct /. 100.0)) in
          push
            {
              row_key = k;
              row_metric = "service.incremental_speedup";
              row_base = bsp;
              row_new = nsp;
              row_verdict = (if nsp < floor then "regression" else "ok");
              row_note = Printf.sprintf "threshold -/%g%%" spd_pct;
            }
      | _ -> ())
  | _ -> ());
  List.rev !rows

let print_table rows =
  let col f = List.fold_left (fun acc r -> max acc (String.length (f r))) 0 rows in
  let fmt_v v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v
  in
  let srows =
    List.map
      (fun r ->
        ( r.row_key,
          r.row_metric,
          fmt_v r.row_base,
          fmt_v r.row_new,
          (let d = pct_delta r.row_base r.row_new in
           if Float.is_integer d && Float.abs d < 1e15 then
             Printf.sprintf "%+.0f%%" d
           else Printf.sprintf "%+.1f%%" d),
          (if String.equal r.row_verdict "regression" then "REGRESSION"
           else r.row_verdict) ))
      rows
  in
  let w1 = max 6 (col (fun r -> r.row_key))
  and w2 = max 6 (col (fun r -> r.row_metric)) in
  let w3 =
    List.fold_left (fun a (_, _, b, _, _, _) -> max a (String.length b)) 4 srows
  and w4 =
    List.fold_left (fun a (_, _, _, n, _, _) -> max a (String.length n)) 3 srows
  and w5 =
    List.fold_left (fun a (_, _, _, _, d, _) -> max a (String.length d)) 5 srows
  in
  Printf.printf "%-*s  %-*s  %*s  %*s  %*s  %s\n" w1 "key" w2 "metric" w3
    "base" w4 "new" w5 "delta" "verdict";
  List.iter
    (fun (k, m, b, n, d, v) ->
      Printf.printf "%-*s  %-*s  %*s  %*s  %*s  %s\n" w1 k w2 m w3 b w4 n w5 d
        v)
    srows

let print_json ~regressions ~compared rows =
  let b = Buffer.create 4096 in
  let str = J.Emit.string in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"nw-benchdiff/1\",\"regressions\":%d,\"compared\":%d,\"rows\":["
       regressions compared);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"key\":";
      str b r.row_key;
      Buffer.add_string b ",\"metric\":";
      str b r.row_metric;
      Buffer.add_string b
        (Printf.sprintf ",\"base\":%.17g,\"new\":%.17g,\"verdict\":" r.row_base
           r.row_new);
      str b r.row_verdict;
      Buffer.add_string b ",\"note\":";
      str b r.row_note;
      Buffer.add_char b '}')
    rows;
  Buffer.add_string b "]}\n";
  print_string (Buffer.contents b)

let main () =
  let base_files = ref [] and new_files = ref [] in
  let wall_pct = ref 30.0
  and rounds_tol = ref 0
  and tp_pct = ref 30.0
  and svc_pct = ref 75.0
  and spd_pct = ref 50.0
  and json_out = ref false in
  let float_arg name v rest =
    match (float_of_string_opt v, rest) with
    | Some f, rest when f >= 0.0 -> (f, rest)
    | _ -> die "%s expects a nonnegative number" name
  in
  let rec parse side = function
    | [] -> ()
    | "--base" :: rest -> parse `Base rest
    | "--new" :: rest -> parse `New rest
    | "--json" :: rest ->
        json_out := true;
        parse side rest
    | "--wall-threshold" :: v :: rest ->
        let f, rest = float_arg "--wall-threshold" v rest in
        wall_pct := f;
        parse side rest
    | "--throughput-threshold" :: v :: rest ->
        let f, rest = float_arg "--throughput-threshold" v rest in
        tp_pct := f;
        parse side rest
    | "--service-threshold" :: v :: rest ->
        let f, rest = float_arg "--service-threshold" v rest in
        svc_pct := f;
        parse side rest
    | "--speedup-threshold" :: v :: rest ->
        let f, rest = float_arg "--speedup-threshold" v rest in
        spd_pct := f;
        parse side rest
    | "--rounds-tolerance" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 0 ->
            rounds_tol := n;
            parse side rest
        | _ -> die "--rounds-tolerance expects a nonnegative integer")
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        die "unknown option %s" arg
    | file :: rest -> (
        match side with
        | `None -> usage ()
        | `Base ->
            base_files := file :: !base_files;
            parse side rest
        | `New ->
            new_files := file :: !new_files;
            parse side rest)
  in
  parse `None (List.tl (Array.to_list Sys.argv));
  if !base_files = [] || !new_files = [] then usage ();
  let index files =
    List.fold_left
      (fun acc f ->
        let r = load_run f in
        (key r, r) :: acc)
      []
      (List.rev files)
  in
  let base_ix = index !base_files and new_ix = index !new_files in
  let rows = ref [] and unmatched = ref [] in
  List.iter
    (fun (k, b) ->
      match List.assoc_opt k new_ix with
      | Some n ->
          rows :=
            !rows
            @ compare_runs ~wall_pct:!wall_pct ~rounds_tol:!rounds_tol
                ~tp_pct:!tp_pct ~svc_pct:!svc_pct ~spd_pct:!spd_pct b n
      | None -> unmatched := (k, "base-only") :: !unmatched)
    base_ix;
  List.iter
    (fun (k, _) ->
      if List.assoc_opt k base_ix = None then
        unmatched := (k, "new-only") :: !unmatched)
    new_ix;
  let rows = !rows in
  let regressions =
    List.length (List.filter (fun r -> String.equal r.row_verdict "regression") rows)
  in
  if !json_out then print_json ~regressions ~compared:(List.length rows) rows
  else begin
    print_table rows;
    List.iter
      (fun (k, side) -> Printf.printf "note: %s present on %s side only\n" k side)
      (List.rev !unmatched);
    Printf.printf "benchdiff: %d row%s compared, %d regression%s\n"
      (List.length rows)
      (if List.length rows = 1 then "" else "s")
      regressions
      (if regressions = 1 then "" else "s")
  end;
  if regressions > 0 then exit 1

(* exit protocol: 0 clean, 1 regression, 2 anything wrong with the tool
   or its inputs — CI must be able to tell "gate tripped" from "gate
   broke", so no code path may escape as a raw exception *)
let () =
  try main () with
  | Sys_error msg -> die "%s" msg
  | exn -> die "internal error: %s" (Printexc.to_string exn)
