(* Rule catalogue and tunable denylists/allowlists. Every list here is
   extendable from the command line (see nwlint.ml) so new graph-like
   types or sanctioned scratch modules never require an engine change. *)

type t = {
  det2_modules : string list;
      (* module names whose values are graph-like: applying polymorphic
         [=]/[compare]/[Hashtbl.hash] to them is DET002 *)
  det2_scalar_allow : string list;
      (* accessors of the above modules that return scalars (safe to
         compare structurally): [G.n g = 0] is fine *)
  det2_value_deny : string list;
      (* bare value/field names assumed graph-like (type-name
         heuristic): [adj = adj'] is DET002 even unqualified *)
  scratch_modules : string list;
      (* module names sanctioned to hold top-level mutable state *)
  det1_rng_allow : string list;
      (* dotted module prefixes sanctioned as randomness sources: paths
         through a module named [Rng] in lib/ are DET001 (hand-rolled
         generator) unless their alias-expanded form starts with one of
         these. The splittable, seed-threaded [Nw_chaos.Rng] is the
         blessed source (every draw a pure function of seed +
         coordinates, so fault timelines replay). *)
  det1_clock_allow : string list;
      (* dotted paths (equal-or-prefix on the alias-expanded form)
         sanctioned as monotonic-clock sources: raw reads of
         Monotonic_clock/Mtime_clock in lib/ outside lib/obs are DET001
         unless they resolve here. [Nw_obs.Obs.now_ns] is the blessed
         route — it sits behind the Obs enable switch, so disabled runs
         stay clock-free and deterministic; the flight recorder's
         timestamps flow through the same source inside lib/obs. *)
  eng1_composites : (string * string list) list;
      (* composite-phase entry points of lib/core, as
         (module, functions): outside lib/core and lib/engine these are
         ENG001 — callers go through the engine (Nw_engine.Run or a
         Pipelines builder) so every run gets per-pass spans, rounds
         attribution, and checkpoints. Leaf primitives (Cut, Color_split,
         Diameter_reduction, H_partition.compute, ...) stay callable. *)
  eng1_allow : string list;
      (* dotted [Module.func] names exempted from ENG001 *)
}

let default =
  {
    det2_modules =
      [ "Multigraph"; "Graphs"; "Coloring"; "Palette"; "Orientation" ];
    det2_scalar_allow =
      [
        "n";
        "m";
        "degree";
        "color";
        "colors";
        "mem";
        "find";
        "length";
        "count";
        "arboricity";
        "max_color";
        "other_endpoint";
      ];
    det2_value_deny = [ "adj"; "adjacency" ];
    (* Scratch: per-call workspaces threaded explicitly; Counters:
       process-wide atomic instrumentation snapshotted/deltaed by the
       bench harness (safe under --domains K by construction) *)
    scratch_modules = [ "Scratch"; "Counters" ];
    det1_rng_allow = [ "Nw_chaos.Rng"; "Chaos.Rng" ];
    det1_clock_allow = [ "Nw_obs.Obs.now_ns" ];
    eng1_composites =
      [
        ( "Forest_algo",
          [
            "forest_decomposition";
            "list_forest_decomposition";
            "decompose_with_leftover";
            "partial_color";
            "lfd_leftover";
          ] );
        ("Lsfd", [ "distributed"; "layered_color" ]);
        ( "Star_forest",
          [
            "sfd";
            "lsfd";
            "sfd_select";
            "sfd_realize";
            "sfd_finish";
            "lsfd_select";
            "lsfd_realize";
          ] );
        ("Orient", [ "orientation" ]);
        ("Pseudo_forest", [ "decompose" ]);
      ];
    eng1_allow = [];
  }

(* (id, default severity, one-line summary) — the source of truth for
   --list-rules, suppression validation, and docs/static-analysis.md *)
let rules =
  [
    ( "DET001",
      Diagnostic.Error,
      "no wall-clock, raw monotonic-clock, unseeded Random, or ad-hoc Rng \
       modules in lib/ (lib/obs, Nw_obs.Obs.now_ns, and the seed-threaded \
       Nw_chaos.Rng allowlisted)" );
    ( "DET002",
      Diagnostic.Error,
      "no polymorphic =/compare/Hashtbl.hash on graph, adjacency, or \
       coloring values" );
    ( "LEDGER001",
      Diagnostic.Error,
      "Rounds.charge/charge_max/merge_into must run lexically inside an \
       Obs span or an [@obs.in_span] function" );
    ( "IO001",
      Diagnostic.Error,
      "no stdout printing in lib/ (use nw_obs or return values)" );
    ( "EXN001",
      Diagnostic.Error,
      "catch-all exception handler without re-raise (span exception-safety)"
    );
    ( "OBS001",
      Diagnostic.Error,
      "no Gc.stat in lib/ (O(heap) walk) where Gc.quick_stat suffices for \
       resource attribution" );
    ( "PURE001",
      Diagnostic.Error,
      "no top-level mutable state in lib/core or lib/decomp outside \
       sanctioned scratch modules" );
    ( "ENG001",
      Diagnostic.Error,
      "composite-phase entry points of lib/core (Forest_algo, Lsfd, \
       Star_forest, Orient, Pseudo_forest composites) are only invokable \
       via the engine (Nw_engine.Run / Pipelines) outside lib/core and \
       lib/engine" );
    ( "SVC001",
      Diagnostic.Error,
      "lib/service request handlers never touch Nw_engine.Store directly \
       — session state is reached only through the Session API \
       (lib/service/session.ml), which scopes every Store key to its \
       owning session" );
    ( "PERF001",
      Diagnostic.Error,
      "no O(n) Array.fill-style scratch resets in lib/ hot paths (use \
       generation-stamped Nw_graphs.Scratch; cold rebuild paths suppress \
       with justification)" );
    ( "PERF002",
      Diagnostic.Error,
      "no new boxed-tuple adjacency planes ((int * int) rows nested in \
       any two array/list containers) in lib/ — adjacency lives in the \
       Csr/Multigraph backends" );
    ( "RACE001",
      Diagnostic.Error,
      "no writes to global refs or the Store reachable from a Dpool.run \
       / Domain.spawn / sharded Msg_net round callback (route through \
       Domain.DLS, per-shard state, or an allowlisted accumulator) \
       [--flow]" );
    ( "RACE002",
      Diagnostic.Error,
      "Domain.DLS keys are created at module top level only, and the \
       deterministic merge phase never reads DLS [--flow]" );
    ( "CONTRACT001",
      Diagnostic.Error,
      "every registered pass touches exactly the Store keys its \
       reads/writes contract declares — no undeclared accesses, no dead \
       entries [--flow]" );
    ( "EFF001",
      Diagnostic.Error,
      "no IO, wall-clock, or unseeded randomness reachable from pass \
       bodies or proved-pure functions [--flow]" );
    ("PARSE001", Diagnostic.Error, "source file failed to parse");
    ( "SUPP001",
      Diagnostic.Error,
      "nwlint:disable without a `-- justification`" );
    ("SUPP002", Diagnostic.Warning, "unused nwlint:disable suppression");
    ( "SUPP003",
      Diagnostic.Error,
      "nwlint:disable names an unknown rule id" );
  ]

let known_rule id = List.exists (fun (r, _, _) -> String.equal r id) rules

(* interprocedural rules run by the --flow layer (tools/nwlint/flow);
   the per-file engine must not flag their suppressions as unused *)
let flow_rules = [ "RACE001"; "RACE002"; "CONTRACT001"; "EFF001" ]
let flow_rule id = List.mem id flow_rules

(* rule ids a file-level suppression may target (the analysis rules;
   suppression hygiene itself cannot be suppressed) *)
let suppressible id =
  known_rule id && not (String.length id >= 4 && String.sub id 0 4 = "SUPP")
