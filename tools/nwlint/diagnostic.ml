(* A single lint finding: position, rule id, severity, message, and an
   actionable fix hint. Rendering (text and JSON) lives here so the
   driver and the test suite agree on the output format. *)

type severity = Warning | Error

let severity_to_string = function Warning -> "warning" | Error -> "error"

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
  hint : string option;
}

let make ~file ~line ~col ~rule ~severity ~message ?hint () =
  { file; line; col; rule; severity; message; hint }

(* stable output order: file, then position, then rule id *)
let compare_pos a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_text d =
  let base =
    Printf.sprintf "%s:%d:%d: [%s] %s: %s" d.file d.line d.col d.rule
      (severity_to_string d.severity)
      d.message
  in
  match d.hint with
  | None -> base
  | Some h -> Printf.sprintf "%s\n  hint: %s" base h

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let hint =
    match d.hint with
    | None -> "null"
    | Some h -> Printf.sprintf "\"%s\"" (json_escape h)
  in
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\",\"hint\":%s}"
    (json_escape d.file) d.line d.col (json_escape d.rule)
    (severity_to_string d.severity)
    (json_escape d.message) hint
