(* The nwlint analysis engine.

   One pass of [Ast_traverse.iter] per file, with three pieces of
   context threaded through the walk:

   - a module-alias table ([module G = Nw_graphs.Multigraph]) collected
     in a prepass, so rules see resolved paths;
   - the lexical span depth: +1 inside the arguments of an
     [Obs.span]/[Obs.with_span] application (including through [@@] and
     [|>]) and inside bindings/expressions carrying an
     [@obs.in_span]/[@obs.span] attribute — LEDGER001 and EXN001 are
     defined in terms of it;
   - the module-name stack, so PURE001 can exempt sanctioned scratch
     modules.

   Rules fire by path scope: DET/IO/EXN/PURE apply under lib/ (PURE001
   only under lib/core and lib/decomp; DET001 allowlists lib/obs);
   LEDGER001 applies everywhere the driver looks. *)

module Lint_config = Config
open Ppxlib

(* ------------------------------------------------------------------ *)
(* path scoping                                                        *)

type scope = {
  in_lib : bool;
  in_lib_obs : bool;
  in_lib_chaos : bool;  (* lib/chaos hosts the sanctioned Rng itself *)
  in_lib_service : bool;  (* the forestd daemon (SVC001 session isolation) *)
  in_pure_dirs : bool;  (* lib/core or lib/decomp *)
  in_engine_dirs : bool;
      (* lib/core (the composites' home) or lib/engine (the sanctioned
         caller) — ENG001 is silent there *)
}

let path_segments path =
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")

let scope_of_path path =
  let segs = path_segments path in
  (* anchor on the last "lib"/"bench"/"bin" segment so relative
     prefixes like ../../lib/core/foo.ml classify correctly *)
  let rec tail_from = function
    | [] -> []
    | ("lib" | "bench" | "bin") :: _ as l -> l
    | _ :: rest -> tail_from rest
  in
  let anchored = tail_from segs in
  match anchored with
  | "lib" :: rest ->
      {
        in_lib = true;
        in_lib_obs = (match rest with "obs" :: _ -> true | _ -> false);
        in_lib_chaos = (match rest with "chaos" :: _ -> true | _ -> false);
        in_lib_service =
          (match rest with "service" :: _ -> true | _ -> false);
        in_pure_dirs =
          (match rest with ("core" | "decomp") :: _ -> true | _ -> false);
        in_engine_dirs =
          (match rest with ("core" | "engine") :: _ -> true | _ -> false);
      }
  | _ ->
      {
        in_lib = false;
        in_lib_obs = false;
        in_lib_chaos = false;
        in_lib_service = false;
        in_pure_dirs = false;
        in_engine_dirs = false;
      }

(* ------------------------------------------------------------------ *)
(* longident utilities                                                 *)

let flatten_lid lid =
  match Longident.flatten_exn lid with
  | segs -> segs
  | exception _ -> []

let strip_stdlib = function "Stdlib" :: rest -> rest | segs -> segs

let rec last = function [] -> "" | [ x ] -> x | _ :: rest -> last rest

let dotted segs = String.concat "." segs

(* ------------------------------------------------------------------ *)
(* engine                                                              *)

let span_attr_names = [ "obs.in_span"; "obs.span" ]

let has_span_attr attrs =
  List.exists
    (fun a -> List.mem a.attr_name.txt span_attr_names)
    attrs

let lint_ast (config : Lint_config.t) ~scope ~file ~source_defines_compare
    (aliases : (string, string list) Hashtbl.t) ast =
  let diags = ref [] in
  let add ~loc rule severity message hint =
    let pos = loc.Location.loc_start in
    diags :=
      Diagnostic.make ~file ~line:pos.pos_lnum
        ~col:(pos.pos_cnum - pos.pos_bol)
        ~rule ~severity ~message ?hint ()
      :: !diags
  in
  (* resolve the head module of a path through local aliases *)
  let expand segs =
    let rec go depth segs =
      if depth > 8 then segs
      else
        match segs with
        | first :: rest when Hashtbl.mem aliases first ->
            go (depth + 1) (Hashtbl.find aliases first @ rest)
        | segs -> segs
    in
    strip_stdlib (go 0 segs)
  in
  let expand_lid lid = expand (flatten_lid lid) in

  (* --- DET001 -------------------------------------------------- *)
  let det1_exact =
    [
      [ "Unix"; "time" ];
      [ "Unix"; "gettimeofday" ];
      [ "Sys"; "time" ];
    ]
  in
  (* raw monotonic-clock modules: fine inside lib/obs (that is where the
     sanctioned wrapper lives), DET001 anywhere else in lib/ unless the
     expanded path resolves to a sanctioned source *)
  let clock_modules = [ "Monotonic_clock"; "Mtime_clock"; "Mtime" ] in
  let is_clock_path segs =
    let modpath =
      match List.rev segs with [] -> [] | _ :: m -> List.rev m
    in
    List.exists (fun m -> List.mem m clock_modules) modpath
  in
  let clock_sanctioned segs =
    let d = dotted segs in
    List.exists
      (fun p ->
        let lp = String.length p in
        String.equal d p
        || (String.length d > lp
            && String.equal (String.sub d 0 lp) p
            && d.[lp] = '.'))
      config.det1_clock_allow
  in
  let check_det1 ~loc segs =
    if scope.in_lib && not scope.in_lib_obs then
      if List.mem segs det1_exact then
        add ~loc "DET001" Error
          (Printf.sprintf "wall-clock read `%s` in lib/" (dotted segs))
          (Some
             "lib/ must be deterministic and clock-free; time only via \
              the monotonic clock in lib/obs")
      else
        match segs with
        | [ "Random"; "State"; "make_self_init" ] | [ "Random"; "self_init" ]
          ->
            add ~loc "DET001" Error
              (Printf.sprintf "nondeterministic seeding `%s` in lib/"
                 (dotted segs))
              (Some
                 "seed explicitly from the experiment config \
                  (Random.State.make [| seed |])")
        | "Random" :: f :: _ when f <> "State" ->
            add ~loc "DET001" Error
              (Printf.sprintf
                 "global Random state `%s` in lib/ (unseeded, \
                  process-wide)"
                 (dotted segs))
              (Some
                 "thread a seeded Random.State.t from the experiment \
                  config instead")
        | _ when is_clock_path segs && not (clock_sanctioned segs) ->
            add ~loc "DET001" Error
              (Printf.sprintf "raw monotonic-clock read `%s` in lib/"
                 (dotted segs))
              (Some
                 "timestamps flow through Nw_obs.Obs.now_ns (behind the \
                  Obs enable switch, so disabled runs stay clock-free); \
                  sanction other sources with --allow-clock PREFIX")
        | _ ->
            (* paths through a module named Rng are hand-rolled
               generators unless they resolve to a sanctioned source
               (config.det1_rng_allow; lib/chaos hosts that source, so
               its own unqualified Rng is exempt) *)
            let modpath =
              match List.rev segs with [] -> [] | _ :: m -> List.rev m
            in
            let has_prefix p =
              let d = dotted segs in
              let lp = String.length p in
              String.length d > lp
              && String.equal (String.sub d 0 lp) p
              && d.[lp] = '.'
            in
            if
              List.mem "Rng" modpath
              && (not scope.in_lib_chaos)
              && not (List.exists has_prefix config.det1_rng_allow)
            then
              add ~loc "DET001" Error
                (Printf.sprintf "ad-hoc RNG module in `%s` in lib/"
                   (dotted segs))
                (Some
                   "randomness in lib/ flows through the seed-threaded \
                    splittable Nw_chaos.Rng (alias it: module Rng = \
                    Nw_chaos.Rng) or an explicitly seeded Random.State.t")
  in

  (* --- OBS001 -------------------------------------------------- *)
  (* Gc.stat walks the entire major heap to compute live/free block
     counts; every resource-attribution field the observability layer
     reads (minor/major/promoted words, collection counts,
     top_heap_words) is available from the O(1) Gc.quick_stat *)
  let check_obs1 ~loc segs =
    if scope.in_lib && segs = [ "Gc"; "stat" ] then
      add ~loc "OBS001" Error
        "`Gc.stat` in lib/ — walks the whole heap (O(live blocks) pause)"
        (Some
           "use Gc.quick_stat: minor/major/promoted words, collection \
            counts, and top_heap_words are all O(1) counter reads")
  in

  (* --- DET002 -------------------------------------------------- *)
  let poly_idents =
    [ [ "compare" ]; [ "Hashtbl"; "hash" ]; [ "Hashtbl"; "seeded_hash" ];
      [ "Hashtbl"; "hash_param" ] ]
  in
  let check_det2_bare ~loc segs =
    if scope.in_lib && List.mem segs poly_idents then
      if not (segs = [ "compare" ] && source_defines_compare) then
        add ~loc "DET002" Error
          (Printf.sprintf
             "polymorphic structural `%s` in lib/ — silent \
              nondeterminism on mutable graph records"
             (dotted segs))
          (Some
             "use a monomorphic comparator (Int.compare, String.compare, \
              or an explicit per-type compare)")
  in
  (* is this operand (syntactically) a graph-like value? *)
  let graph_valued e =
    let module_hit segs =
      let modpath = match List.rev segs with [] -> [] | _ :: m -> List.rev m in
      List.exists (fun m -> List.mem m config.det2_modules) modpath
      && not (List.mem (last segs) config.det2_scalar_allow)
    in
    match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        let segs = expand (flatten_lid txt) in
        module_hit segs || List.mem (last segs) config.det2_value_deny
    | Pexp_field (_, { txt; _ }) ->
        List.mem (last (flatten_lid txt)) config.det2_value_deny
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
        module_hit (expand (flatten_lid txt))
    | _ -> false
  in
  let check_det2_eq ~loc op args =
    if scope.in_lib && List.mem op [ "="; "<>"; "=="; "!=" ] then
      match args with
      | [ (_, a); (_, b) ] when graph_valued a || graph_valued b ->
          add ~loc "DET002" Error
            (Printf.sprintf
               "polymorphic `%s` applied to a graph/adjacency/coloring \
                value"
               op)
            (Some
               "compare via an explicit accessor or a monomorphic \
                equality for the type")
      | _ -> ()
  in

  (* --- IO001 --------------------------------------------------- *)
  let io_deny =
    [
      [ "print_endline" ]; [ "print_string" ]; [ "print_newline" ];
      [ "print_char" ]; [ "print_int" ]; [ "print_float" ];
      [ "print_bytes" ]; [ "stdout" ];
      [ "Printf"; "printf" ];
      [ "Format"; "printf" ]; [ "Format"; "print_string" ];
      [ "Format"; "print_newline" ]; [ "Format"; "std_formatter" ];
    ]
  in
  let check_io ~loc segs =
    if scope.in_lib && List.mem segs io_deny then
      add ~loc "IO001" Error
        (Printf.sprintf "stdout I/O `%s` in lib/" (dotted segs))
        (Some
           "library code reports through nw_obs (spans, counters) or \
            returned values; printing belongs to bench/ and bin/")
  in

  (* --- ENG001 -------------------------------------------------- *)
  (* composite-phase entry points of lib/core may only be invoked via
     the engine: outside lib/core and lib/engine, any alias-expanded
     path ending in a denylisted [Module.func] fires. The engine wraps
     every pass in an Obs span, attributes its rounds, and can
     checkpoint at the boundary — direct calls silently lose all
     three. *)
  let check_eng1 ~loc segs =
    if not scope.in_engine_dirs then
      match List.rev segs with
      | func :: modname :: _ -> (
          match List.assoc_opt modname config.eng1_composites with
          | Some funcs
            when List.mem func funcs
                 && not
                      (List.mem
                         (modname ^ "." ^ func)
                         config.eng1_allow) ->
              add ~loc "ENG001" Error
                (Printf.sprintf
                   "direct call of composite `%s` outside the engine"
                   (dotted segs))
                (Some
                   "go through Nw_engine.Run (drop-in signatures) or \
                    build the pipeline with Nw_engine.Pipelines and \
                    Engine.run — direct calls lose per-pass spans, \
                    rounds attribution, and checkpoints")
          | _ -> ())
      | _ -> ()
  in

  (* --- SVC001 -------------------------------------------------- *)
  (* session isolation in the daemon: every piece of Store state the
     service holds belongs to exactly one named session, and session.ml
     is the single sanctioned owner of that coupling. A request handler
     (server.ml, wire.ml, anything else under lib/service) reaching
     into Nw_engine.Store directly — even through a module alias — can
     read or clobber keys of a session the request does not own, so the
     access must go through the Session API instead. *)
  let in_session_owner =
    String.equal (Filename.remove_extension (Filename.basename file)) "session"
  in
  let check_svc1 ~loc segs =
    if scope.in_lib_service && not in_session_owner then
      match segs with
      | "Nw_engine" :: "Store" :: _ ->
          add ~loc "SVC001" Error
            (Printf.sprintf
               "direct Store access `%s` in a daemon request handler"
               (dotted segs))
            (Some
               "lib/service touches engine state only through Session \
                (lib/service/session.ml), which scopes every Store key \
                to the session that owns it — a handler-level Store \
                access can cross session boundaries")
      | _ -> ()
  in

  (* --- PERF001 ------------------------------------------------- *)
  (* O(n) scratch resets in lib/ hot paths: the data-plane discipline is
     generation-stamped scratch (Nw_graphs.Scratch), where reset is a
     counter bump. Cold rebuild paths suppress with a justification. *)
  let check_perf1 ~loc segs =
    if scope.in_lib && segs = [ "Array"; "fill" ] then
      add ~loc "PERF001" Error
        "O(n) `Array.fill` scratch reset in lib/"
        (Some
           "reset scratch via generation stamps (Nw_graphs.Scratch, O(1) \
            reset); if this is a genuinely cold rebuild path, suppress \
            with a justification")
  in

  (* --- LEDGER001 ----------------------------------------------- *)
  let is_rounds_charge segs =
    match List.rev segs with
    | ("charge" | "charge_max" | "merge_into") :: "Rounds" :: _ -> true
    | _ -> false
  in

  (* --- EXN001 -------------------------------------------------- *)
  let reraise_idents =
    [
      [ "raise" ]; [ "raise_notrace" ]; [ "failwith" ]; [ "invalid_arg" ];
      [ "Printexc"; "raise_with_backtrace" ];
    ]
  in
  let expr_reraises e =
    let found = ref false in
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
              let segs = expand_lid txt in
              let l = last segs in
              if
                List.mem segs reraise_idents
                || (String.length l >= 4 && String.sub l 0 4 = "fail")
              then found := true
          | Pexp_assert _ -> found := true
          | _ -> ());
          super#expression e
      end
    in
    it#expression e;
    !found
  in
  let rec catch_all pat =
    match pat.ppat_desc with
    | Ppat_any | Ppat_var _ -> true
    | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all p
    | Ppat_or (a, b) -> catch_all a || catch_all b
    | _ -> false
  in
  let check_exn ~loc:_ ~span_depth cases =
    if scope.in_lib then
      List.iter
        (fun c ->
          if catch_all c.pc_lhs && c.pc_guard = None
             && not (expr_reraises c.pc_rhs)
          then
            let severity =
              if span_depth > 0 then Diagnostic.Error else Diagnostic.Warning
            in
            let where =
              if span_depth > 0 then " inside an Obs span scope" else ""
            in
            add ~loc:c.pc_lhs.ppat_loc "EXN001" severity
              (Printf.sprintf
                 "catch-all handler swallows exceptions without \
                  re-raise%s"
                 where)
              (Some
                 "match specific exceptions, or re-raise after cleanup \
                  so spans close on the failing path"))
        cases
  in

  (* --- PURE001 ------------------------------------------------- *)
  let mutable_ctors =
    [
      [ "ref" ];
      [ "Hashtbl"; "create" ];
      [ "Buffer"; "create" ];
      [ "Queue"; "create" ];
      [ "Stack"; "create" ];
      [ "Atomic"; "make" ];
      [ "Array"; "make" ];
      [ "Array"; "init" ];
      [ "Array"; "create_float" ];
      [ "Bytes"; "create" ];
      [ "Bytes"; "make" ];
      [ "Weak"; "create" ];
    ]
  in
  let rec mutable_toplevel_rhs e =
    match e.pexp_desc with
    | Pexp_constraint (e, _) -> mutable_toplevel_rhs e
    | Pexp_tuple es -> List.exists mutable_toplevel_rhs es
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
        List.mem (expand_lid txt) mutable_ctors
    | _ -> false
  in

  (* spans: Obs.span / Obs.with_span applications *)
  let is_span_fn e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        let check segs =
          match List.rev segs with
          | ("span" | "with_span") :: modpath ->
              List.exists
                (fun m ->
                  let m = String.lowercase_ascii m in
                  m = "obs" || m = "nw_obs")
                modpath
          | _ -> false
        in
        let raw = flatten_lid txt in
        check raw || check (expand raw))
    | _ -> false
  in
  let is_span_application e =
    match e.pexp_desc with
    | Pexp_apply (f, _) -> is_span_fn f
    | _ -> is_span_fn e
  in

  let visitor =
    object (self)
      inherit Ast_traverse.iter as super
      val mutable span_depth = 0
      val mutable mod_stack : string list = []

      method private in_span f =
        span_depth <- span_depth + 1;
        f ();
        span_depth <- span_depth - 1

      method! module_binding mb =
        let name = Option.value ~default:"_" mb.pmb_name.txt in
        mod_stack <- name :: mod_stack;
        super#module_binding mb;
        mod_stack <- List.tl mod_stack

      method! structure_item it =
        (match it.pstr_desc with
        | Pstr_value (_, vbs)
          when scope.in_pure_dirs
               && not
                    (List.exists
                       (fun m -> List.mem m config.scratch_modules)
                       mod_stack) ->
            List.iter
              (fun vb ->
                if mutable_toplevel_rhs vb.pvb_expr then
                  add ~loc:vb.pvb_loc "PURE001" Error
                    "top-level mutable state in lib/core or lib/decomp \
                     breaks --domains K isolation"
                    (Some
                       "allocate inside the algorithm entry point, or \
                        move it into a sanctioned Scratch module"))
              vbs
        | _ -> ());
        super#structure_item it

      method! value_binding vb =
        if has_span_attr vb.pvb_attributes then
          self#in_span (fun () -> super#value_binding vb)
        else super#value_binding vb

      (* --- PERF002 ------------------------------------------------ *)
      (* a new boxed-tuple adjacency plane — per-vertex rows of (int *
         int) endpoints held in any two nested {array, list} containers:
         `(int * int) array array`, `(int * int) list array`, ... —
         reintroduces the pointer-chasing data plane the CSR backend
         exists to replace. The list-row forms matter since the
         functorized Coloring/Augmenting core: an incremental-churn
         helper in lib/decomp that accumulates adjacency as list rows
         would silently pin the cache to the boxed plane. *)
      method! core_type ct =
        (if scope.in_lib then
           let is_int c =
             match c.ptyp_desc with
             | Ptyp_constr ({ txt = Lident "int"; _ }, []) -> true
             | _ -> false
           in
           let container c =
             match c with
             | Ptyp_constr ({ txt = Lident (("array" | "list") as name); _ },
                            [ inner ]) ->
                 Some (name, inner)
             | _ -> None
           in
           match container ct.ptyp_desc with
           | Some (outer, inner1) -> (
               match container inner1.ptyp_desc with
               | Some (inner, inner2) -> (
                   match inner2.ptyp_desc with
                   | Ptyp_tuple comps
                     when List.length comps >= 2 && List.for_all is_int comps
                     ->
                       add ~loc:ct.ptyp_loc "PERF002" Error
                         (Printf.sprintf
                            "boxed-tuple adjacency plane type `(int * int) \
                             %s %s` in lib/"
                            inner outer)
                         (Some
                            "adjacency planes belong to the graph \
                             backends: use Nw_graphs.Csr (flat Bigarray \
                             planes, packed neighbor/edge ints) or the \
                             sanctioned Multigraph reference plane \
                             instead of a new boxed plane")
                   | _ -> ())
               | None -> ())
           | None -> ());
        super#core_type ct

      method! expression e =
        if has_span_attr e.pexp_attributes then
          self#in_span (fun () -> self#expression_inner e)
        else self#expression_inner e

      method private expression_inner e =
        let loc = e.pexp_loc in
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
            let segs = expand_lid txt in
            check_det1 ~loc segs;
            check_obs1 ~loc segs;
            check_det2_bare ~loc segs;
            check_io ~loc segs;
            check_eng1 ~loc segs;
            check_svc1 ~loc segs;
            check_perf1 ~loc segs
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            let segs = expand_lid txt in
            check_det2_eq ~loc (dotted segs) args;
            if is_rounds_charge segs && span_depth = 0 then
              add ~loc "LEDGER001" Error
                (Printf.sprintf
                   "`%s` outside any Obs span scope — these rounds \
                    escape per-phase attribution"
                   (dotted segs))
                (Some
                   "wrap the call site in Obs.span, or mark the \
                    enclosing function [@obs.in_span] if every caller \
                    opens a span"))
        | Pexp_try (_, cases) -> check_exn ~loc ~span_depth cases
        | _ -> ());
        match e.pexp_desc with
        | Pexp_apply (f, args) when is_span_fn f ->
            self#expression f;
            self#in_span (fun () ->
                List.iter (fun (_, a) -> self#expression a) args)
        | Pexp_apply
            ( ({ pexp_desc = Pexp_ident { txt = Lident "@@"; _ }; _ } as op),
              [ (_, l); (_, r) ] )
          when is_span_application l ->
            self#expression op;
            self#expression l;
            self#in_span (fun () -> self#expression r)
        | Pexp_apply
            ( ({ pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ } as op),
              [ (_, l); (_, r) ] )
          when is_span_application r ->
            self#expression op;
            self#expression r;
            self#in_span (fun () -> self#expression l)
        | _ -> super#expression e
    end
  in
  (match ast with
  | `Impl str -> visitor#structure str
  | `Intf sg -> visitor#signature sg);
  !diags

(* ------------------------------------------------------------------ *)
(* prepasses                                                           *)

let collect_aliases str =
  let tbl = Hashtbl.create 8 in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! module_binding mb =
        (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
        | Some name, Pmod_ident { txt; _ } -> (
            match flatten_lid txt with
            | [] -> ()
            | segs -> Hashtbl.replace tbl name segs)
        | _ -> ());
        super#module_binding mb
    end
  in
  it#structure str;
  tbl

let defines_compare str =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        (match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt = "compare"; _ } -> found := true
        | _ -> ());
        super#value_binding vb
    end
  in
  it#structure str;
  !found

(* ------------------------------------------------------------------ *)
(* entry points                                                        *)

let parse_error_diag ~file exn =
  let message =
    match Location.Error.of_exn exn with
    | Some err -> Location.Error.message err
    | None -> Printexc.to_string exn
  in
  [
    Diagnostic.make ~file ~line:1 ~col:0 ~rule:"PARSE001" ~severity:Error
      ~message:(Printf.sprintf "cannot parse: %s" message)
      ();
  ]

let apply_suppressions ~file directives diags =
  let active = Hashtbl.create 8 in
  let supp = ref [] in
  let add_supp line rule severity message =
    supp :=
      Diagnostic.make ~file ~line ~col:0 ~rule ~severity ~message ()
      :: !supp
  in
  List.iter
    (fun (d : Suppress.directive) ->
      if not d.justified then
        add_supp d.line "SUPP001" Error
          "suppression without a `-- justification`";
      List.iter
        (fun r ->
          if not (Lint_config.suppressible r) then
            add_supp d.line "SUPP003" Error
              (Printf.sprintf "unknown rule id %S in nwlint:disable" r)
          else Hashtbl.replace active r d)
        d.rules)
    directives;
  let kept =
    List.filter
      (fun (d : Diagnostic.t) ->
        match Hashtbl.find_opt active d.rule with
        | Some dir ->
            dir.used <- true;
            false
        | None -> true)
      diags
  in
  List.iter
    (fun (d : Suppress.directive) ->
      if d.justified && not d.used
         && List.for_all Lint_config.suppressible d.rules
         (* flow-rule suppressions are consumed by the interprocedural
            layer, which this per-file engine cannot see *)
         && not (List.exists Lint_config.flow_rule d.rules)
      then
        add_supp d.line "SUPP002" Warning
          (Printf.sprintf "suppression of %s never fired — remove it"
             (String.concat ", " d.rules)))
    directives;
  kept @ !supp

let lint_string ?(config = Lint_config.default) ~path source =
  let scope = scope_of_path path in
  let directives = Suppress.scan source in
  let diags =
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf path;
    if Filename.check_suffix path ".mli" then
      match Parse.interface lexbuf with
      | sg ->
          lint_ast config ~scope ~file:path ~source_defines_compare:false
            (Hashtbl.create 1) (`Intf sg)
      | exception exn -> parse_error_diag ~file:path exn
    else
      match Parse.implementation lexbuf with
      | str ->
          let aliases = collect_aliases str in
          lint_ast config ~scope ~file:path
            ~source_defines_compare:(defines_compare str) aliases (`Impl str)
      | exception exn -> parse_error_diag ~file:path exn
  in
  apply_suppressions ~file:path directives diags
  |> List.sort Diagnostic.compare_pos

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?config path =
  match read_file path with
  | source -> lint_string ?config ~path source
  | exception Sys_error msg ->
      [
        Diagnostic.make ~file:path ~line:1 ~col:0 ~rule:"PARSE001"
          ~severity:Error
          ~message:(Printf.sprintf "cannot read: %s" msg)
          ();
      ]

(* recursive .ml/.mli discovery, deterministic order *)
let collect_files paths =
  let skip_dir name =
    String.length name > 0
    && (name.[0] = '.' || name.[0] = '_' || name = "node_modules")
  in
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry ->
             let child = Filename.concat path entry in
             if Sys.is_directory child then (
               if not (skip_dir entry) then walk child)
             else if
               Filename.check_suffix entry ".ml"
               || Filename.check_suffix entry ".mli"
             then acc := child :: !acc)
    else acc := path :: !acc
  in
  List.iter walk paths;
  List.sort String.compare !acc
