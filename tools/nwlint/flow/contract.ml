(* CONTRACT001 extraction: find every engine pass record

     { name; reads; writes; run }

   and every pipeline record { pl_name; passes } in the project, and
   resolve their name / key-list / run-body values to literals.

   Builders parameterize passes (const_pass, single, partial_passes'
   ~prefix/~palette_key), so a record whose fields mention the
   enclosing function's parameters is instantiated once per call site
   with the formal->actual substitution — that is how "fd.plan" writes
   "palette" becomes checkable even though both are parameters at the
   definition. Instances that stay unresolvable after substitution are
   reported as warnings rather than silently skipped: an unresolvable
   contract is itself a finding. *)

open Ppxlib
module P = Project
module E = Effects

(* an expression together with the resolution context it came from (a
   call-site argument lives in the caller's file, not the record's) *)
type cexpr = { ce : expression; cfile : P.file; cmod : string list }

type pass_inst = {
  pi_name : string;
  pi_reads : string option list;
  pi_writes : string option list;
  pi_node : string;  (* name of the run body's effect node *)
  pi_loc : Location.t;
}

type t = {
  passes : pass_inst list;
  pipelines : string list;
  extra_nodes : E.node list;
  unresolved : (string * Location.t) list;
}

(* ------------------------------------------------------------------ *)
(* literal evaluation under a formal->actual environment               *)

let rec eval_string proj env c =
  match c.ce.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | Pexp_constraint (e, _) -> eval_string proj env { c with ce = e }
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "^"; _ }; _ },
        [ (_, a); (_, b) ] ) -> (
      match
        (eval_string proj env { c with ce = a },
         eval_string proj env { c with ce = b })
      with
      | Some x, Some y -> Some (x ^ y)
      | _ -> None)
  | Pexp_ident { txt; _ } -> (
      let segs = P.flatten_lid txt in
      match segs with
      | [ v ] when List.mem_assoc v env -> eval_string proj [] (List.assoc v env)
      | _ -> (
          match P.resolve_def proj c.cfile ~modpath:c.cmod segs with
          | Some d -> (
              match P.file_by_path proj d.P.d_file with
              | Some f ->
                  eval_string proj []
                    { ce = d.P.d_expr; cfile = f; cmod = d.P.d_modpath }
              | None -> None)
          | None -> None))
  | _ -> None

let rec eval_key proj env c =
  match c.ce.pexp_desc with
  | Pexp_tuple (k :: _) -> eval_string proj env { c with ce = k }
  | Pexp_constraint (e, _) -> eval_key proj env { c with ce = e }
  | Pexp_constant (Pconst_string _) -> eval_string proj env c
  | Pexp_ident { txt; _ } -> (
      let segs = P.flatten_lid txt in
      match segs with
      | [ v ] when List.mem_assoc v env -> eval_key proj [] (List.assoc v env)
      | _ -> (
          match P.resolve_def proj c.cfile ~modpath:c.cmod segs with
          | Some d -> (
              match P.file_by_path proj d.P.d_file with
              | Some f ->
                  eval_key proj []
                    { ce = d.P.d_expr; cfile = f; cmod = d.P.d_modpath }
              | None -> None)
          | None -> None))
  | _ -> None

(* flatten a literal list expression; chase idents through env/defs *)
let rec eval_list proj env c =
  match c.ce.pexp_desc with
  | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> Some []
  | Pexp_construct
      ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
    ->
      Option.map
        (fun rest -> { c with ce = hd } :: rest)
        (eval_list proj env { c with ce = tl })
  | Pexp_constraint (e, _) -> eval_list proj env { c with ce = e }
  | Pexp_ident { txt; _ } -> (
      let segs = P.flatten_lid txt in
      match segs with
      | [ v ] when List.mem_assoc v env -> eval_list proj [] (List.assoc v env)
      | _ -> (
          match P.resolve_def proj c.cfile ~modpath:c.cmod segs with
          | Some d -> (
              match P.file_by_path proj d.P.d_file with
              | Some f ->
                  eval_list proj []
                    { ce = d.P.d_expr; cfile = f; cmod = d.P.d_modpath }
              | None -> None)
          | None -> None))
  | _ -> None

let rec eval_fn proj env c =
  match c.ce.pexp_desc with
  | Pexp_function _ -> Some c
  | Pexp_constraint (e, _) -> eval_fn proj env { c with ce = e }
  | Pexp_ident { txt; _ } -> (
      let segs = P.flatten_lid txt in
      match segs with
      | [ v ] when List.mem_assoc v env -> eval_fn proj [] (List.assoc v env)
      | _ -> (
          match P.resolve_def proj c.cfile ~modpath:c.cmod segs with
          | Some d -> (
              match P.file_by_path proj d.P.d_file with
              | Some f ->
                  eval_fn proj []
                    { ce = d.P.d_expr; cfile = f; cmod = d.P.d_modpath }
              | None -> None)
          | None -> None))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* formal parameters and call sites                                    *)

let rec params_of e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> params_of e
  | Pexp_function (ps, _, body) ->
      let here =
        List.filter_map
          (fun p ->
            match p.pparam_desc with
            | Pparam_val (lbl, _, pat) -> (
                let rec var p =
                  match p.ppat_desc with
                  | Ppat_var { txt; _ } -> Some txt
                  | Ppat_constraint (p, _) -> var p
                  | _ -> None
                in
                match var pat with Some v -> Some (lbl, v) | None -> None)
            | Pparam_newtype _ -> None)
          ps
      in
      (match body with
      | Pfunction_body ({ pexp_desc = Pexp_function _; _ } as b) ->
          here @ params_of b
      | _ -> here)
  | _ -> []

let label_name = function
  | Labelled l | Optional l -> Some l
  | Nolabel -> None

(* formal->actual substitution for one application *)
let build_env params (args : (arg_label * cexpr) list) =
  let positional_params =
    List.filter_map
      (fun (l, n) -> if l = Nolabel then Some n else None)
      params
  in
  let positional_args =
    List.filter_map (fun (l, a) -> if l = Nolabel then Some a else None) args
  in
  let rec zip ps es =
    match (ps, es) with
    | p :: ps, e :: es -> (p, e) :: zip ps es
    | _ -> []
  in
  let pos = zip positional_params positional_args in
  let labelled =
    List.filter_map
      (fun (l, a) ->
        match label_name l with
        | None -> None
        | Some name ->
            if
              List.exists
                (fun (pl, _) ->
                  match label_name pl with
                  | Some pn -> String.equal pn name
                  | None -> false)
                params
            then Some (name, a)
            else None)
      args
  in
  pos @ labelled

(* every application of [target] anywhere in the project, as contextual
   argument lists *)
let call_sites proj target =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ (d : P.def) ->
      match P.file_by_path proj d.P.d_file with
      | None -> ()
      | Some file ->
          let it =
            object
              inherit Ast_traverse.iter as super

              method! expression e =
                (match e.pexp_desc with
                | Pexp_apply (f, args) -> (
                    let rec head f args =
                      match f.pexp_desc with
                      | Pexp_apply (g, args0) -> head g (args0 @ args)
                      | _ -> (f, args)
                    in
                    let f, args = head f args in
                    match f.pexp_desc with
                    | Pexp_ident { txt; _ } -> (
                        match
                          P.resolve_def proj file ~modpath:d.P.d_modpath
                            (P.flatten_lid txt)
                        with
                        | Some dd when String.equal dd.P.d_name target ->
                            acc :=
                              List.map
                                (fun (l, a) ->
                                  (l,
                                   { ce = a; cfile = file;
                                     cmod = d.P.d_modpath }))
                                args
                              :: !acc
                        | _ -> ())
                    | _ -> ())
                | _ -> ());
                super#expression e
            end
          in
          it#expression d.P.d_expr)
    proj.P.defs;
  !acc

(* ------------------------------------------------------------------ *)
(* extraction                                                          *)

type raw_record =
  | Pass of (Longident.t loc * expression) list * Location.t
  | Pipeline of (Longident.t loc * expression) list * Location.t

let records_in (d : P.def) =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_record (fields, None) ->
            let labels =
              List.filter_map
                (fun ((l : Longident.t loc), _) ->
                  match l.txt with Lident n -> Some n | _ -> None)
                fields
            in
            let has n = List.mem n labels in
            if has "name" && has "reads" && has "writes" && has "run" then
              acc := Pass (fields, e.pexp_loc) :: !acc
            else if has "pl_name" && has "passes" then
              acc := Pipeline (fields, e.pexp_loc) :: !acc
        | _ -> ());
        super#expression e
    end
  in
  it#expression d.P.d_expr;
  List.rev !acc

let field fields n =
  List.find_map
    (fun ((l : Longident.t loc), e) ->
      match l.txt with
      | Lident name when String.equal name n -> Some e
      | _ -> None)
    fields

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum

let extract cfg proj =
  let passes = ref [] in
  let pipelines = ref [] in
  let extra_nodes = ref [] in
  let unresolved = ref [] in
  let seen_pass = Hashtbl.create 64 in
  let defs = Hashtbl.fold (fun _ d acc -> d :: acc) proj.P.defs [] in
  let defs =
    List.sort (fun (a : P.def) b -> String.compare a.d_name b.d_name) defs
  in
  List.iter
    (fun (d : P.def) ->
      match P.file_by_path proj d.P.d_file with
      | None -> ()
      | Some file ->
          let records = records_in d in
          if records <> [] then begin
            let base = { ce = d.P.d_expr; cfile = file; cmod = d.P.d_modpath } in
            let envs =
              (* the empty env first: records whose fields are literal
                 resolve without call sites *)
              [] ::
              (match params_of d.P.d_expr with
              | [] -> []
              | params ->
                  List.map (build_env params) (call_sites proj d.P.d_name))
            in
            List.iter
              (function
                | Pass (fields, loc) ->
                    let resolved = ref false in
                    List.iter
                      (fun env ->
                        let get n =
                          Option.map
                            (fun e -> { base with ce = e })
                            (field fields n)
                        in
                        let name =
                          Option.bind (get "name") (eval_string proj env)
                        in
                        let keys field_name =
                          match
                            Option.bind (get field_name) (eval_list proj env)
                          with
                          | None -> None
                          | Some elems ->
                              Some (List.map (eval_key proj env) elems)
                        in
                        let reads = keys "reads" in
                        let writes = keys "writes" in
                        let run =
                          Option.bind (get "run") (eval_fn proj env)
                        in
                        match (name, reads, writes, run) with
                        | Some name, Some reads, Some writes, Some run ->
                            let id =
                              Printf.sprintf "%s@%s:%d" name
                                loc.loc_start.pos_fname (loc_line loc)
                            in
                            if not (Hashtbl.mem seen_pass id) then begin
                              Hashtbl.replace seen_pass id ();
                              resolved := true;
                              let key_env =
                                List.filter_map
                                  (fun (v, c) ->
                                    Option.map
                                      (fun s -> (v, s))
                                      (eval_string proj [] c))
                                  env
                              in
                              let node_name = "pass:" ^ id in
                              let nodes =
                                E.analyze_expr ~key_env cfg proj run.cfile
                                  ~modpath:run.cmod ~name:node_name run.ce
                              in
                              extra_nodes := nodes @ !extra_nodes;
                              passes :=
                                {
                                  pi_name = name;
                                  pi_reads = reads;
                                  pi_writes = writes;
                                  pi_node = node_name;
                                  pi_loc = loc;
                                }
                                :: !passes
                            end
                            else resolved := true
                        | _ -> ())
                      envs;
                    if not !resolved then
                      unresolved :=
                        ( "pass contract is not statically resolvable \
                           (name/reads/writes/run did not reduce to \
                           literals at any call site)",
                          loc )
                        :: !unresolved
                | Pipeline (fields, loc) ->
                    let resolved = ref false in
                    List.iter
                      (fun env ->
                        match
                          Option.bind
                            (Option.map
                               (fun e -> { base with ce = e })
                               (field fields "pl_name"))
                            (eval_string proj env)
                        with
                        | Some name ->
                            resolved := true;
                            if not (List.mem name !pipelines) then
                              pipelines := name :: !pipelines
                        | None -> ())
                      envs;
                    if not !resolved then
                      unresolved :=
                        ("pipeline pl_name is not statically resolvable", loc)
                        :: !unresolved)
              records
          end)
    defs;
  {
    passes = List.rev !passes;
    pipelines = List.sort String.compare !pipelines;
    extra_nodes = !extra_nodes;
    unresolved = !unresolved;
  }
