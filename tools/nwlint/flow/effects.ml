(* Intrinsic effect extraction.

   Each project definition (and each synthetic node for a lambda handed
   to a spawn point) gets a node with:

   - its intrinsic *events*: writes/reads of top-level mutable state
     classified by region, Store accesses with resolved literal keys,
     Domain.DLS traffic, and the effectful primitives (IO, wall clock,
     unseeded Random);
   - its *call edges*: every reference that resolves to a project
     definition (bare references count — a function passed to
     List.iter may be called);
   - its *spawn edges*: the callback arguments of Dpool.run,
     Domain.spawn, and the sharded Msg_net round entry points.

   Writes whose target root is a local, a parameter, or a captured
   binding are the per-shard mailbox discipline and are not events;
   only targets that resolve to a top-level project definition count.
   The region model (docs/static-analysis.md): Scratch and Obs/Rounds
   are sanctioned state, Chaos.Rng is the seed-threaded draw source,
   allowlisted merge accumulators are Accum, everything else that is
   written is a global-ref. *)

open Ppxlib
module P = Project

type region = Scratch | Obs | Rng | Accum | Store_region | Global

let region_name = function
  | Scratch -> "Scratch"
  | Obs -> "Obs/Rounds"
  | Rng -> "Chaos.Rng"
  | Accum -> "accumulator"
  | Store_region -> "Store"
  | Global -> "global-ref"

type event =
  | Write_global of string * region  (* canonical target *)
  | Read_mutable of string * region
  | Store_write of string option  (* resolved literal key *)
  | Store_read of string option
  | Dls_write
  | Dls_read
  | Dls_new_key  (* only recorded when created under a lambda *)
  | Io of string
  | Wall_clock of string
  | Rng_unseeded of string

type spawn_kind = Dpool_run | Domain_spawn | Msgnet_callback of string

let spawn_kind_name = function
  | Dpool_run -> "Dpool.run"
  | Domain_spawn -> "Domain.spawn"
  | Msgnet_callback label -> "Msg_net round ~" ^ label

type node = {
  n_name : string;
  n_loc : Location.t;
  n_synthetic : bool;
  mutable n_events : (event * Location.t) list;
  mutable n_calls : (string * Location.t) list;
  mutable n_spawns : (spawn_kind * string * Location.t) list;
}

type config = {
  scratch_modules : string list;
  accumulators : string list;  (* canonical allowlisted merge accumulators *)
  obs_prefixes : string list;  (* canonical prefixes of sanctioned state *)
  rng_prefixes : string list;
  dpool_run : string list;  (* canonical spawn entry points *)
  msgnet_fns : string list;  (* sharded round entry points, by last segment *)
  store_prefixes : string list;  (* canonical Store module prefixes *)
  pure_roots : string list;  (* canonical prefixes EFF001 treats as pure *)
  merge_markers : string list;  (* substrings naming merge-phase functions *)
}

let default_config =
  {
    scratch_modules = [ "Scratch"; "Counters" ];
    accumulators =
      [ "Nw_localsim.Dpool.worker_minor"; "Nw_localsim.Dpool.worker_major" ];
    obs_prefixes = [ "Nw_obs."; "Nw_localsim.Rounds." ];
    rng_prefixes = [ "Nw_chaos.Rng." ];
    dpool_run = [ "Nw_localsim.Dpool.run" ];
    msgnet_fns = [ "round"; "round_count"; "run_until" ];
    store_prefixes = [ "Nw_engine.Store." ];
    pure_roots = [ "Nw_chaos.Rng."; "Nw_chaos.Plan."; "Nw_decomp.Verify." ];
    merge_markers = [ "merge" ];
  }

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* region of a canonical definition name *)
let region_of cfg name =
  let segs = String.split_on_char '.' name in
  let mods = match segs with [] | [ _ ] -> [] | _ -> P.drop_last segs in
  if List.exists (fun m -> List.mem m cfg.scratch_modules) mods then Scratch
  else if List.mem name cfg.accumulators then Accum
  else if List.exists (fun p -> has_prefix ~prefix:p name) cfg.obs_prefixes
  then Obs
  else if List.exists (fun p -> has_prefix ~prefix:p name) cfg.rng_prefixes
  then Rng
  else Global

let obs_owned cfg name =
  List.exists (fun p -> has_prefix ~prefix:p name) cfg.obs_prefixes

(* mutator-call table: canonical stdlib mutators and the index of the
   argument they mutate *)
let mutators =
  [
    ([ "Array"; "set" ], 0);
    ([ "Array"; "fill" ], 0);
    ([ "Array"; "blit" ], 2);
    ([ "Array"; "unsafe_set" ], 0);
    ([ "Bytes"; "set" ], 0);
    ([ "Bytes"; "unsafe_set" ], 0);
    ([ "Bytes"; "fill" ], 0);
    ([ "Bytes"; "blit" ], 2);
    ([ "Hashtbl"; "add" ], 0);
    ([ "Hashtbl"; "replace" ], 0);
    ([ "Hashtbl"; "remove" ], 0);
    ([ "Hashtbl"; "reset" ], 0);
    ([ "Hashtbl"; "clear" ], 0);
    ([ "Hashtbl"; "filter_map_inplace" ], 1);
    ([ "Atomic"; "set" ], 0);
    ([ "Atomic"; "exchange" ], 0);
    ([ "Atomic"; "compare_and_set" ], 0);
    ([ "Atomic"; "fetch_and_add" ], 0);
    ([ "Atomic"; "incr" ], 0);
    ([ "Atomic"; "decr" ], 0);
    ([ "Buffer"; "add_char" ], 0);
    ([ "Buffer"; "add_string" ], 0);
    ([ "Buffer"; "add_substring" ], 0);
    ([ "Buffer"; "add_buffer" ], 0);
    ([ "Buffer"; "clear" ], 0);
    ([ "Buffer"; "reset" ], 0);
    ([ "Buffer"; "truncate" ], 0);
    ([ "Queue"; "push" ], 1);
    ([ "Queue"; "add" ], 1);
    ([ "Queue"; "pop" ], 0);
    ([ "Queue"; "take" ], 0);
    ([ "Queue"; "clear" ], 0);
    ([ "Stack"; "push" ], 1);
    ([ "Stack"; "pop" ], 0);
    ([ "Stack"; "clear" ], 0);
  ]

let mutable_readers =
  [ [ "Atomic"; "get" ]; [ "Hashtbl"; "find" ]; [ "Hashtbl"; "find_opt" ];
    [ "Hashtbl"; "mem" ]; [ "Hashtbl"; "length" ]; [ "Queue"; "peek" ];
    [ "Buffer"; "contents" ] ]

let wall_clocks =
  [ [ "Unix"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Sys"; "time" ] ]

let io_calls =
  [
    [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "print_char" ]; [ "print_int" ]; [ "print_float" ];
    [ "prerr_string" ]; [ "prerr_endline" ]; [ "prerr_newline" ];
    [ "print_bytes" ]; [ "prerr_bytes" ]; [ "read_line" ]; [ "read_int" ];
    [ "output_string" ]; [ "output_char" ]; [ "output_bytes" ];
    [ "open_in" ]; [ "open_in_bin" ]; [ "open_out" ]; [ "open_out_bin" ];
    [ "input_line" ]; [ "really_input_string" ];
    [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ]; [ "Printf"; "fprintf" ];
    [ "Format"; "printf" ]; [ "Format"; "eprintf" ];
    [ "Sys"; "command" ]; [ "Sys"; "remove" ]; [ "Sys"; "rename" ];
    [ "Sys"; "getenv" ]; [ "Sys"; "getenv_opt" ];
    [ "Unix"; "write" ]; [ "Unix"; "read" ]; [ "Unix"; "openfile" ];
    [ "Unix"; "unlink" ]; [ "Unix"; "socket" ]; [ "Unix"; "connect" ];
    [ "Unix"; "bind" ]; [ "Unix"; "accept" ]; [ "Unix"; "system" ];
  ]

let io_idents = [ [ "stdout" ]; [ "stderr" ]; [ "stdin" ] ]

(* ------------------------------------------------------------------ *)
(* the walker                                                          *)

type ctx = {
  cfg : config;
  proj : P.t;
  file : P.file;
  modpath : string list;
  locals : (string, int) Hashtbl.t;
  mutable local_funs : (string * expression) list;
  mutable inlining : string list;  (* recursion guard for local inlines *)
  mutable lambda_depth : int;
  mutable node : node;
  mutable in_synth : bool;
  key_env : (string, string) Hashtbl.t;  (* param -> literal Store key *)
  out : node list ref;  (* synthetic nodes created during the walk *)
}

let push_local ctx name =
  Hashtbl.replace ctx.locals name
    (1 + Option.value (Hashtbl.find_opt ctx.locals name) ~default:0)

let pop_local ctx name =
  match Hashtbl.find_opt ctx.locals name with
  | Some 1 -> Hashtbl.remove ctx.locals name
  | Some n -> Hashtbl.replace ctx.locals name (n - 1)
  | None -> ()

let rec pattern_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pattern_vars (txt :: acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pattern_vars acc ps
  | Ppat_construct (_, Some (_, p)) -> pattern_vars acc p
  | Ppat_variant (_, Some p) -> pattern_vars acc p
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pattern_vars acc p) acc fields
  | Ppat_or (a, b) -> pattern_vars (pattern_vars acc a) b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p)
  | Ppat_exception p ->
      pattern_vars acc p
  | _ -> acc

let with_vars ctx names f =
  List.iter (push_local ctx) names;
  Fun.protect ~finally:(fun () -> List.iter (pop_local ctx) names) f

let event ctx ev loc = ctx.node.n_events <- (ev, loc) :: ctx.node.n_events

let call_edge ctx name loc =
  ctx.node.n_calls <- (name, loc) :: ctx.node.n_calls

(* root identifier of a write target: chase field projections, array /
   ref reads, and constraints down to the base identifier *)
let rec target_root e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (P.flatten_lid txt)
  | Pexp_field (e, _) -> target_root e
  | Pexp_constraint (e, _) -> target_root e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, a) :: _) -> (
      match P.strip_stdlib (P.flatten_lid txt) with
      | [ "!" ]
      | [ "Array"; "get" ] | [ "Array"; "unsafe_get" ]
      | [ "Bytes"; "get" ] | [ "String"; "get" ]
      | [ "Atomic"; "get" ] | [ "Hashtbl"; "find" ] ->
          target_root a
      | _ -> None)
  | _ -> None

let classify_target ctx e =
  match target_root e with
  | None -> None
  | Some [] -> None
  | Some ([ v ] as segs) ->
      if Hashtbl.mem ctx.locals v then None
      else
        Option.map
          (fun (d : P.def) -> d.d_name)
          (P.resolve_def ctx.proj ctx.file ~modpath:ctx.modpath segs)
  | Some segs ->
      Option.map
        (fun (d : P.def) -> d.d_name)
        (P.resolve_def ctx.proj ctx.file ~modpath:ctx.modpath segs)

let record_write ctx e loc =
  match classify_target ctx e with
  | Some target -> event ctx (Write_global (target, region_of ctx.cfg target)) loc
  | None -> ()

let record_read ctx e loc =
  match classify_target ctx e with
  | Some target ->
      event ctx (Read_mutable (target, region_of ctx.cfg target)) loc
  | None -> ()

(* resolve a Store key argument to a literal string: constants, params
   bound in key_env, or top-level string/tuple constants *)
let rec resolve_key ctx e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | Pexp_constraint (e, _) -> resolve_key ctx e
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "fst"; _ }; _ },
        [ (_, arg) ] ) ->
      resolve_key ctx arg
  | Pexp_tuple (k :: _) -> resolve_key ctx k
  | Pexp_ident { txt; _ } -> (
      let segs = P.flatten_lid txt in
      match segs with
      | [ v ] when Hashtbl.mem ctx.key_env v -> Hashtbl.find_opt ctx.key_env v
      | _ -> (
          match
            P.resolve_def ctx.proj ctx.file ~modpath:ctx.modpath segs
          with
          | Some d -> resolve_key ctx d.d_expr
          | None -> None))
  | _ -> None

let nth_positional args n =
  let rec go n = function
    | [] -> None
    | (Nolabel, e) :: rest -> if n = 0 then Some e else go (n - 1) rest
    | _ :: rest -> go n rest
  in
  go n args

let fresh_synth ctx kind loc =
  let line = loc.loc_start.pos_lnum in
  let name =
    Printf.sprintf "%s#%s:%d" ctx.node.n_name (spawn_kind_name kind) line
  in
  { n_name = name; n_loc = loc; n_synthetic = true; n_events = [];
    n_calls = []; n_spawns = [] }

let rec walk ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> note_ident ctx (P.flatten_lid txt) e.pexp_loc
  | Pexp_constant _ | Pexp_unreachable -> ()
  | Pexp_apply (f, args) -> apply ctx f args e.pexp_loc
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk ctx vb.pvb_expr) vbs;
      let vars =
        List.fold_left (fun acc vb -> pattern_vars acc vb.pvb_pat) [] vbs
      in
      let funs =
        List.filter_map
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
            | Ppat_var { txt; _ }, (Pexp_function _ | Pexp_ident _) ->
                Some (txt, vb.pvb_expr)
            | _ -> None)
          vbs
      in
      let saved = ctx.local_funs in
      ctx.local_funs <- funs @ ctx.local_funs;
      with_vars ctx vars (fun () -> walk ctx body);
      ctx.local_funs <- saved
  | Pexp_function (params, _, body) ->
      let vars =
        List.fold_left
          (fun acc p ->
            match p.pparam_desc with
            | Pparam_val (_, default, pat) ->
                Option.iter (walk ctx) default;
                pattern_vars acc pat
            | Pparam_newtype _ -> acc)
          [] params
      in
      ctx.lambda_depth <- ctx.lambda_depth + 1;
      with_vars ctx vars (fun () ->
          match body with
          | Pfunction_body b -> walk ctx b
          | Pfunction_cases (cases, _, _) -> walk_cases ctx cases);
      ctx.lambda_depth <- ctx.lambda_depth - 1
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
      walk ctx s;
      walk_cases ctx cases
  | Pexp_setfield (tgt, _, v) ->
      record_write ctx tgt e.pexp_loc;
      walk ctx tgt;
      walk ctx v
  | Pexp_field (inner, _) -> walk ctx inner
  | Pexp_tuple es | Pexp_array es -> List.iter (walk ctx) es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      Option.iter (walk ctx) arg
  | Pexp_record (fields, base) ->
      List.iter (fun (_, e) -> walk ctx e) fields;
      Option.iter (walk ctx) base
  | Pexp_ifthenelse (a, b, c) ->
      walk ctx a;
      walk ctx b;
      Option.iter (walk ctx) c
  | Pexp_sequence (a, b) ->
      walk ctx a;
      walk ctx b
  | Pexp_while (a, b) ->
      walk ctx a;
      walk ctx b
  | Pexp_for (p, a, b, _, body) ->
      walk ctx a;
      walk ctx b;
      with_vars ctx (pattern_vars [] p) (fun () -> walk ctx body)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_assert e
  | Pexp_lazy e | Pexp_poly (e, _) | Pexp_newtype (_, e)
  | Pexp_open (_, e) | Pexp_send (e, _) | Pexp_setinstvar (_, e) ->
      walk ctx e
  | Pexp_letmodule (name, me, body) ->
      (* local module alias: extend the file alias table for the body *)
      let restore =
        match (name.txt, P.module_expr_head me) with
        | Some n, Some segs ->
            let old = Hashtbl.find_opt ctx.file.P.aliases n in
            Hashtbl.replace ctx.file.P.aliases n segs;
            Some (n, old)
        | _ -> None
      in
      walk ctx body;
      (match restore with
      | Some (n, Some old) -> Hashtbl.replace ctx.file.P.aliases n old
      | Some (n, None) -> Hashtbl.remove ctx.file.P.aliases n
      | None -> ())
  | Pexp_letexception (_, body) -> walk ctx body
  | Pexp_letop { let_; ands; body } ->
      walk ctx let_.pbop_exp;
      List.iter (fun a -> walk ctx a.pbop_exp) ands;
      let vars =
        List.fold_left
          (fun acc b -> pattern_vars acc b.pbop_pat)
          (pattern_vars [] let_.pbop_pat)
          ands
      in
      with_vars ctx vars (fun () -> walk ctx body)
  | Pexp_override fields -> List.iter (fun (_, e) -> walk ctx e) fields
  | _ -> ()

and walk_cases ctx cases =
  List.iter
    (fun c ->
      with_vars ctx (pattern_vars [] c.pc_lhs) (fun () ->
          Option.iter (walk ctx) c.pc_guard;
          walk ctx c.pc_rhs))
    cases

and note_ident ctx segs loc =
  match segs with
  | [] -> ()
  | [ v ] when Hashtbl.mem ctx.locals v ->
      (* a local function referenced from a synthetic (spawned) node was
         attributed to the enclosing node at its definition; re-walk it
         here so the spawn root owns its effects too *)
      if ctx.in_synth && not (List.mem v ctx.inlining) then (
        match List.assoc_opt v ctx.local_funs with
        | Some body ->
            ctx.inlining <- v :: ctx.inlining;
            Fun.protect
              ~finally:(fun () -> ctx.inlining <- List.tl ctx.inlining)
              (fun () -> walk ctx body)
        | None -> ())
  | _ -> (
      let raw = P.strip_stdlib segs in
      if List.mem raw io_idents then event ctx (Io (P.dotted raw)) loc;
      match P.resolve_def ctx.proj ctx.file ~modpath:ctx.modpath segs with
      | Some d ->
          call_edge ctx d.d_name loc;
          if d.d_mutable then
            event ctx (Read_mutable (d.d_name, region_of ctx.cfg d.d_name)) loc
      | None -> classify_external ctx raw None loc)

(* effectful-primitive classification for paths that do not resolve to
   a project definition *)
and classify_external ctx raw args loc =
  if List.mem raw wall_clocks then event ctx (Wall_clock (P.dotted raw)) loc
  else if List.mem raw io_calls then event ctx (Io (P.dotted raw)) loc
  else
    match raw with
    | "Random" :: f :: _ when f <> "State" ->
        event ctx (Rng_unseeded ("Random." ^ f)) loc
    | [ "Random"; "State"; "make_self_init" ] ->
        event ctx (Rng_unseeded "Random.State.make_self_init") loc
    | [ "Domain"; "DLS"; "new_key" ] ->
        if ctx.lambda_depth > 0 then event ctx Dls_new_key loc
    | [ "Domain"; "DLS"; "get" ] -> event ctx Dls_read loc
    | [ "Domain"; "DLS"; "set" ] -> event ctx Dls_write loc
    | _ -> (
        match args with
        | None -> ()
        | Some args -> (
            match List.assoc_opt raw mutators with
            | Some idx -> (
                match nth_positional args idx with
                | Some tgt -> record_write ctx tgt loc
                | None -> ())
            | None ->
                if List.mem raw mutable_readers then
                  match nth_positional args 0 with
                  | Some tgt -> record_read ctx tgt loc
                  | None -> ()))

and apply ctx f args loc =
  match (f.pexp_desc, args) with
  | Pexp_ident { txt = Lident "|>"; _ }, [ (_, x); (_, g) ] ->
      apply_fn ctx g [ (Nolabel, x) ] loc
  | Pexp_ident { txt = Lident "@@"; _ }, [ (_, g); (_, x) ] ->
      apply_fn ctx g [ (Nolabel, x) ] loc
  | _ -> apply_fn ctx f args loc

and apply_fn ctx f args loc =
  match f.pexp_desc with
  | Pexp_apply (g, args0) -> apply_fn ctx g (args0 @ args) loc
  | Pexp_ident { txt; _ } -> apply_ident ctx (P.flatten_lid txt) args loc
  | _ ->
      walk ctx f;
      List.iter (fun (_, a) -> walk ctx a) args

and apply_ident ctx segs args loc =
  let raw = P.strip_stdlib segs in
  let walk_args () = List.iter (fun (_, a) -> walk ctx a) args in
  match raw with
  | [ ":=" ] ->
      (match args with
      | (_, lhs) :: rest ->
          record_write ctx lhs loc;
          List.iter (fun (_, a) -> walk ctx a) rest
      | [] -> ())
  | [ "incr" ] | [ "decr" ] ->
      (match nth_positional args 0 with
      | Some tgt -> record_write ctx tgt loc
      | None -> ());
      walk_args ()
  | [ "!" ] ->
      (match nth_positional args 0 with
      | Some tgt -> record_read ctx tgt loc
      | None -> ());
      walk_args ()
  | _ -> (
      match P.resolve_def ctx.proj ctx.file ~modpath:ctx.modpath segs with
      | Some d ->
          call_edge ctx d.d_name loc;
          if d.d_mutable then
            event ctx (Read_mutable (d.d_name, region_of ctx.cfg d.d_name))
              loc;
          (* Store and the spawn entry points resolve to project defs
             when their files are among the sources — classify anyway *)
          store_access ctx d.d_name args loc;
          spawn_sites ctx d.d_name args loc;
          walk_args ()
      | None ->
          let canonical = P.dotted (P.canon ctx.proj ctx.file segs) in
          store_access ctx canonical args loc;
          classify_external ctx raw (Some args) loc;
          spawn_sites ctx canonical args loc;
          walk_args ())

and store_access ctx canonical args loc =
  (* Store's own accessors call each other with parameter keys; those
     internal edges are not artifact accesses of the caller *)
  if
    List.exists
      (fun p -> has_prefix ~prefix:p ctx.node.n_name)
      ctx.cfg.store_prefixes
  then ()
  else
  match
    List.find_opt
      (fun p -> has_prefix ~prefix:p canonical)
      ctx.cfg.store_prefixes
  with
  | None -> ()
  | Some prefix ->
      let fn =
        String.sub canonical (String.length prefix)
          (String.length canonical - String.length prefix)
      in
      let key () =
        match nth_positional args 1 with
        | Some e -> resolve_key ctx e
        | None -> None
      in
      if fn = "put" then event ctx (Store_write (key ())) loc
      else if
        List.mem fn
          [
            "get"; "find"; "mem"; "graph"; "coloring"; "mask"; "orientation";
            "partition"; "clustering"; "palette"; "sides"; "fd_stats";
            "sfd_stats"; "assignment"; "flag"; "num";
          ]
      then event ctx (Store_read (key ())) loc

(* spawn-point detection: Dpool.run's callback, Domain.spawn's thunk,
   and the ~send/~recv/~decide arguments of sharded Msg_net rounds *)
and spawn_sites ctx canonical args loc =
  let spawn kind e =
    let e =
      let rec strip e =
        match e.pexp_desc with
        | Pexp_constraint (e, _) -> strip e
        | _ -> e
      in
      strip e
    in
    match e.pexp_desc with
    | Pexp_function _ -> synth ctx kind e loc
    | Pexp_ident { txt = Lident v; _ }
      when List.mem_assoc v ctx.local_funs ->
        synth ctx kind (List.assoc v ctx.local_funs) loc
    | Pexp_ident { txt; _ } -> (
        match
          P.resolve_def ctx.proj ctx.file ~modpath:ctx.modpath
            (P.flatten_lid txt)
        with
        | Some d ->
            ctx.node.n_spawns <- (kind, d.d_name, loc) :: ctx.node.n_spawns
        | None -> ())
    | _ -> ()
  in
  if List.mem canonical ctx.cfg.dpool_run then (
    (* the callback is the last positional argument *)
    let rec last_pos acc = function
      | [] -> acc
      | (Nolabel, e) :: rest -> last_pos (Some e) rest
      | _ :: rest -> last_pos acc rest
    in
    match last_pos None args with
    | Some e -> spawn Dpool_run e
    | None -> ())
  else if canonical = "Domain.spawn" then (
    match nth_positional args 0 with
    | Some e -> spawn Domain_spawn e
    | None -> ())
  else
    let segs = String.split_on_char '.' canonical in
    let is_msgnet =
      List.exists (fun s -> s = "Msg_net") segs
      && List.mem (List.nth segs (List.length segs - 1)) ctx.cfg.msgnet_fns
    in
    if is_msgnet then
      List.iter
        (fun (label, e) ->
          match label with
          | Labelled (("send" | "recv" | "decide") as l) ->
              spawn (Msgnet_callback l) e
          | _ -> ())
        args

and synth ctx kind e loc =
  let node = fresh_synth ctx kind loc in
  ctx.out := node :: !(ctx.out);
  ctx.node.n_spawns <- (kind, node.n_name, loc) :: ctx.node.n_spawns;
  let saved_node = ctx.node and saved_synth = ctx.in_synth in
  let saved_depth = ctx.lambda_depth in
  ctx.node <- node;
  ctx.in_synth <- true;
  ctx.lambda_depth <- 0;
  Fun.protect
    ~finally:(fun () ->
      ctx.node <- saved_node;
      ctx.in_synth <- saved_synth;
      ctx.lambda_depth <- saved_depth)
    (fun () -> walk ctx e)

(* ------------------------------------------------------------------ *)
(* node construction                                                   *)

let make_ctx ?(key_env = []) cfg proj (file : P.file) ~modpath node out =
  let ke = Hashtbl.create 4 in
  List.iter (fun (k, v) -> Hashtbl.replace ke k v) key_env;
  {
    cfg;
    proj;
    file;
    modpath;
    locals = Hashtbl.create 32;
    local_funs = [];
    inlining = [];
    lambda_depth = 0;
    node;
    in_synth = false;
    key_env = ke;
    out;
  }

(* analyze one definition; returns its node plus any synthetic spawn
   nodes discovered inside it *)
let analyze_def cfg proj (d : P.def) =
  match P.file_by_path proj d.d_file with
  | None -> []
  | Some file ->
      let node =
        { n_name = d.d_name; n_loc = d.d_loc; n_synthetic = false;
          n_events = []; n_calls = []; n_spawns = [] }
      in
      let out = ref [] in
      let ctx = make_ctx cfg proj file ~modpath:d.d_modpath node out in
      walk ctx d.d_expr;
      node :: !out

(* analyze an arbitrary expression (a pass body, a fixture snippet) as
   a synthetic root named [name] *)
let analyze_expr ?key_env cfg proj (file : P.file) ~modpath ~name e =
  let node =
    { n_name = name; n_loc = e.pexp_loc; n_synthetic = true; n_events = [];
      n_calls = []; n_spawns = [] }
  in
  let out = ref [] in
  let ctx = make_ctx ?key_env cfg proj file ~modpath node out in
  walk ctx e;
  node :: !out
