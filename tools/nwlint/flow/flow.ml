(* Orchestration for the interprocedural rules.

   RACE001  writes(global-ref | Store) reachable from a Dpool.run /
            Domain.spawn / sharded Msg_net round callback. Writes to
            locals and captured per-shard state are fine (the mailbox
            discipline), Domain.DLS-routed state is fine, and the
            allowlisted Dpool merge accumulators are fine.
   RACE002  Domain.DLS key creation outside module top level, or a
            non-sanctioned DLS read reachable from a merge-phase
            function (name contains "merge"); the Obs/Rounds
            accounting layer is the audited exception.
   CONTRACT001  per-pass Store access vs. declared reads/writes:
            undeclared accesses, dead contract entries (declared but
            never touched; a declared write with no Store.put is
            exempt when the key is also declared read — the in-place
            mutation pattern), unresolvable contracts, non-literal
            keys.
   EFF001  IO / wall-clock / unseeded-Random reachable from a pass
            body or from a configured proved-pure root.

   Results are cached in a content-hashed summary file (--flow-cache):
   same sources, same answer, no re-analysis. The --baseline ratchet
   compares per-rule finding counts and the suppression-directive
   count against a committed snapshot and fails on any growth. *)

module P = Project
module E = Effects
module S = Summary
module D = Nwlint_core.Diagnostic
module J = Nw_obs.Json_lite

let schema = "nwlint-flow/1"
let baseline_schema = "nwlint-baseline/1"
let flow_rules = [ "RACE001"; "RACE002"; "CONTRACT001"; "EFF001" ]

type result = {
  findings : D.t list;  (* suppression-filtered, sorted *)
  summaries : (string * string) list;  (* canonical fn -> effect sig *)
  pipelines : string list;  (* pl_names whose contracts were verified *)
  pass_count : int;
  function_count : int;
  scc_count : int;
}

let diag ?hint ~rule ~severity ~message (loc : Ppxlib.Location.t) =
  let p = loc.loc_start in
  D.make ~file:p.pos_fname ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol)
    ~rule ~severity ~message ?hint ()

let chain_text chain = String.concat " -> " chain

let site_text (loc : Ppxlib.Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.pos_fname loc.loc_start.pos_lnum

(* ------------------------------------------------------------------ *)
(* rules                                                               *)

let race001 cfg summary =
  let out = ref [] in
  Hashtbl.iter
    (fun _ (n : E.node) ->
      List.iter
        (fun (kind, root, site) ->
          match
            S.witness summary ~root ~pred:(fun _ ev ->
                match ev with
                | E.Write_global (_, E.Global) | E.Store_write _ -> true
                | _ -> false)
          with
          | None -> ()
          | Some (chain, ev, loc) ->
              let what =
                match ev with
                | E.Write_global (t, _) -> "global-ref " ^ t
                | E.Store_write (Some k) ->
                    Printf.sprintf "Store key %S" k
                | E.Store_write None -> "the Store"
                | _ -> "shared state"
              in
              out :=
                diag ~rule:"RACE001" ~severity:D.Error
                  ~message:
                    (Printf.sprintf
                       "write to %s inside a %s callback (spawned at %s; \
                        chain: %s) breaks byte-identical determinism at \
                        --domains K>1"
                       what (E.spawn_kind_name kind) (site_text site)
                       (chain_text chain))
                  ~hint:
                    "route the write through Domain.DLS, per-shard local \
                     state merged after the join, or an allowlisted Dpool \
                     accumulator"
                  loc
                :: !out)
        n.E.n_spawns)
    summary.S.nodes;
  ignore cfg;
  !out

let race002 cfg summary =
  let out = ref [] in
  (* (a) DLS key creation under a lambda: a per-call key defeats the
     one-key-per-domain discipline *)
  Hashtbl.iter
    (fun _ (n : E.node) ->
      List.iter
        (fun (ev, loc) ->
          match ev with
          | E.Dls_new_key ->
              out :=
                diag ~rule:"RACE002" ~severity:D.Error
                  ~message:
                    (Printf.sprintf
                       "Domain.DLS.new_key inside %s: DLS keys must be \
                        created at module top level (one key per process, \
                        not per call)"
                       n.E.n_name)
                  loc
                :: !out
          | _ -> ())
        n.E.n_events)
    summary.S.nodes;
  (* (b) DLS reads reachable from merge-phase functions *)
  Hashtbl.iter
    (fun name (n : E.node) ->
      let last =
        match List.rev (String.split_on_char '.' name) with
        | x :: _ -> String.lowercase_ascii x
        | [] -> ""
      in
      let is_merge =
        (not n.E.n_synthetic)
        && (not (E.obs_owned cfg name))
        && List.exists
             (fun marker ->
               let ml = String.length marker and ll = String.length last in
               let rec at i =
                 i + ml <= ll && (String.sub last i ml = marker || at (i + 1))
               in
               ml > 0 && at 0)
             cfg.E.merge_markers
      in
      if is_merge then
        match
          S.witness summary ~root:name ~pred:(fun owner ev ->
              ev = E.Dls_read && not (E.obs_owned cfg owner.E.n_name))
        with
        | None -> ()
        | Some (chain, _, loc) ->
            out :=
              diag ~rule:"RACE002" ~severity:D.Error
                ~message:
                  (Printf.sprintf
                     "Domain.DLS read reachable from merge-phase function \
                      %s (chain: %s): the deterministic merge must not \
                      depend on which domain runs it"
                     name (chain_text chain))
                loc
              :: !out)
    summary.S.nodes;
  !out

let eff001 cfg summary (contract : Contract.t) =
  let out = ref [] in
  let check ~root ~what =
    match
      S.witness summary ~root ~pred:(fun owner ev ->
          (match ev with
          | E.Io _ | E.Wall_clock _ | E.Rng_unseeded _ -> true
          | _ -> false)
          && not (E.obs_owned cfg owner.E.n_name))
    with
    | None -> ()
    | Some (chain, ev, loc) ->
        let eff =
          match ev with
          | E.Io f -> "IO (" ^ f ^ ")"
          | E.Wall_clock f -> "wall clock (" ^ f ^ ")"
          | E.Rng_unseeded f -> "unseeded randomness (" ^ f ^ ")"
          | _ -> "effect"
        in
        out :=
          diag ~rule:"EFF001" ~severity:D.Error
            ~message:
              (Printf.sprintf "%s reachable from %s (chain: %s)" eff what
                 (chain_text chain))
            ~hint:
              "thread effects through ctx (rng), Nw_obs (timing), or \
               return values (output) so pass replay stays deterministic"
            loc
          :: !out
  in
  List.iter
    (fun (pi : Contract.pass_inst) ->
      check ~root:pi.Contract.pi_node
        ~what:(Printf.sprintf "pass %S (a proved-pure context)" pi.pi_name))
    contract.Contract.passes;
  Hashtbl.iter
    (fun name (n : E.node) ->
      if
        (not n.E.n_synthetic)
        && List.exists
             (fun p -> E.has_prefix ~prefix:p name)
             cfg.E.pure_roots
      then check ~root:name ~what:(name ^ " (declared pure)"))
    summary.S.nodes;
  !out

let contract001 summary (contract : Contract.t) =
  let out = ref [] in
  let add ?(severity = D.Error) loc message =
    out := diag ~rule:"CONTRACT001" ~severity ~message loc :: !out
  in
  List.iter
    (fun (msg, loc) -> add ~severity:D.Warning loc msg)
    contract.Contract.unresolved;
  List.iter
    (fun (pi : Contract.pass_inst) ->
      let name = pi.Contract.pi_name in
      let declared which l =
        List.filter_map
          (fun k ->
            match k with
            | Some k -> Some k
            | None ->
                add ~severity:D.Warning pi.pi_loc
                  (Printf.sprintf
                     "pass %S: a declared %s key does not reduce to a \
                      literal — CONTRACT001 cannot verify it"
                     name which);
                None)
          l
      in
      let reads_decl = declared "read" pi.pi_reads in
      let writes_decl = declared "write" pi.pi_writes in
      let accesses = S.summary summary pi.pi_node in
      let ra = ref [] and wa = ref [] in
      S.ESet.iter
        (fun ev ->
          match ev with
          | E.Store_read (Some k) -> ra := k :: !ra
          | E.Store_write (Some k) -> wa := k :: !wa
          | E.Store_read None ->
              add pi.pi_loc
                (Printf.sprintf
                   "pass %S reads the Store through a non-literal key — \
                    the contract cannot be verified statically"
                   name)
          | E.Store_write None ->
              add pi.pi_loc
                (Printf.sprintf
                   "pass %S writes the Store through a non-literal key — \
                    the contract cannot be verified statically"
                   name)
          | _ -> ())
        accesses;
      let ra = List.sort_uniq String.compare !ra in
      let wa = List.sort_uniq String.compare !wa in
      List.iter
        (fun k ->
          if not (List.mem k reads_decl) then
            add pi.pi_loc
              (Printf.sprintf
                 "pass %S reads artifact %S but does not declare it in \
                  `reads` — the engine cannot schedule or checkpoint \
                  around an undeclared dependency"
                 name k))
        ra;
      List.iter
        (fun k ->
          if not (List.mem k writes_decl) then
            add pi.pi_loc
              (Printf.sprintf
                 "pass %S writes artifact %S but does not declare it in \
                  `writes`"
                 name k))
        wa;
      List.iter
        (fun k ->
          if not (List.mem k ra || List.mem k wa) then
            add pi.pi_loc
              (Printf.sprintf
                 "pass %S declares read of %S but never accesses it — \
                  dead contract entry"
                 name k))
        reads_decl;
      List.iter
        (fun k ->
          if (not (List.mem k wa)) && not (List.mem k reads_decl) then
            add pi.pi_loc
              (Printf.sprintf
                 "pass %S declares write of %S but never writes it — \
                  dead contract entry"
                 name k))
        writes_decl)
    contract.Contract.passes;
  !out

(* ------------------------------------------------------------------ *)
(* analysis                                                            *)

let dedup_diags diags =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (d : D.t) ->
      let k = (d.D.file, d.D.line, d.D.col, d.D.rule, d.D.message) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    diags

(* file-scoped suppression directives apply to flow findings too; the
   per-file engine owns SUPP001/SUPP003 hygiene for the same
   directives, so here we only filter *)
let filter_suppressed sources findings =
  let directives = Hashtbl.create 16 in
  List.iter
    (fun (path, content) ->
      let rules =
        List.concat_map
          (fun (d : Nwlint_core.Suppress.directive) ->
            if d.justified then d.rules else [])
          (Nwlint_core.Suppress.scan content)
      in
      Hashtbl.replace directives path rules)
    sources;
  List.filter
    (fun (d : D.t) ->
      match Hashtbl.find_opt directives d.D.file with
      | Some rules -> not (List.mem d.D.rule rules)
      | None -> true)
    findings

let analyze_project ?(config = E.default_config) proj sources =
  let def_nodes =
    Hashtbl.fold
      (fun _ d acc -> E.analyze_def config proj d @ acc)
      proj.P.defs []
  in
  let contract = Contract.extract config proj in
  let all_nodes = contract.Contract.extra_nodes @ def_nodes in
  let summary = S.compute all_nodes in
  let findings =
    race001 config summary
    @ race002 config summary
    @ contract001 summary contract
    @ eff001 config summary contract
  in
  let findings =
    filter_suppressed sources (dedup_diags findings)
    |> List.sort D.compare_pos
  in
  let summaries =
    Hashtbl.fold
      (fun name (n : E.node) acc ->
        if n.E.n_synthetic then acc
        else (name, S.signature summary name) :: acc)
      summary.S.nodes []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    findings;
    summaries;
    pipelines = contract.Contract.pipelines;
    pass_count = List.length contract.Contract.passes;
    function_count = List.length summaries;
    scc_count = List.length summary.S.sccs;
  }

let analyze_sources ?config sources =
  analyze_project ?config (P.of_sources sources) sources

(* ------------------------------------------------------------------ *)
(* summary cache                                                       *)

let severity_of_string = function "warning" -> D.Warning | _ -> D.Error

let result_to_json digest r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%s,\"digest\":%s,\"findings\":[%s]"
       (J.Emit.string_value schema)
       (J.Emit.string_value digest)
       (String.concat "," (List.map D.to_json r.findings)));
  Buffer.add_string b ",\"summaries\":[";
  List.iteri
    (fun i (name, eff) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"fn\":%s,\"effect\":%s}"
           (J.Emit.string_value name)
           (J.Emit.string_value eff)))
    r.summaries;
  Buffer.add_string b "],\"pipelines\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (J.Emit.string_value p))
    r.pipelines;
  Buffer.add_string b
    (Printf.sprintf "],\"passes\":%d,\"functions\":%d,\"sccs\":%d}"
       r.pass_count r.function_count r.scc_count);
  Buffer.contents b

let result_of_json ~digest text =
  match J.parse text with
  | exception J.Parse_error _ -> None
  | j -> (
      let str m = Option.bind (J.member m j) J.to_string in
      match (str "schema", str "digest") with
      | Some s, Some d when s = schema && d = digest ->
          let diag_of_json dj =
            let s m = Option.bind (J.member m dj) J.to_string in
            let i m = Option.bind (J.member m dj) J.to_int in
            match (s "file", i "line", i "col", s "rule", s "severity",
                   s "message")
            with
            | Some file, Some line, Some col, Some rule, Some sev,
              Some message ->
                Some
                  (D.make ~file ~line ~col ~rule
                     ~severity:(severity_of_string sev) ~message
                     ?hint:(s "hint") ())
            | _ -> None
          in
          let all l f =
            let mapped = List.map f l in
            if List.for_all Option.is_some mapped then
              Some (List.filter_map Fun.id mapped)
            else None
          in
          Option.bind (J.member "findings" j) J.to_list
          |> Fun.flip Option.bind (fun fl ->
                 all fl diag_of_json
                 |> Fun.flip Option.bind (fun findings ->
                        let summaries =
                          Option.bind (J.member "summaries" j) J.to_list
                          |> Option.map
                               (List.filter_map (fun sj ->
                                    match
                                      ( Option.bind (J.member "fn" sj)
                                          J.to_string,
                                        Option.bind (J.member "effect" sj)
                                          J.to_string )
                                    with
                                    | Some f, Some e -> Some (f, e)
                                    | _ -> None))
                        in
                        let pipelines =
                          Option.bind (J.member "pipelines" j) J.to_list
                          |> Option.map (List.filter_map J.to_string)
                        in
                        match
                          ( summaries, pipelines,
                            Option.bind (J.member "passes" j) J.to_int,
                            Option.bind (J.member "functions" j) J.to_int,
                            Option.bind (J.member "sccs" j) J.to_int )
                        with
                        | Some summaries, Some pipelines, Some pass_count,
                          Some function_count, Some scc_count ->
                            Some
                              {
                                findings;
                                summaries;
                                pipelines;
                                pass_count;
                                function_count;
                                scc_count;
                              }
                        | _ -> None))
      | _ -> None)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let digest_sources sources =
  Digest.to_hex
    (Digest.string
       (String.concat "\x01"
          (List.map (fun (p, c) -> p ^ "\x00" ^ c) sources)))

(* analyze the .ml files under [paths], reusing [cache] when its digest
   matches the current sources *)
let analyze_paths ?config ?cache paths =
  let files =
    Nwlint_core.Engine.collect_files paths
    |> List.filter (fun p -> Filename.check_suffix p ".ml")
  in
  let sources = List.map (fun p -> (p, read_file p)) files in
  let digest = digest_sources sources in
  let cached =
    match cache with
    | Some path when Sys.file_exists path -> (
        match result_of_json ~digest (read_file path) with
        | Some r -> Some r
        | None -> None
        | exception _ -> None)
    | _ -> None
  in
  match cached with
  | Some r -> r
  | None ->
      let r = analyze_sources ?config sources in
      (match cache with
      | Some path -> ( try write_file path (result_to_json digest r) with _ -> ())
      | None -> ());
      r

(* ------------------------------------------------------------------ *)
(* baseline ratchet                                                    *)

type baseline = { b_rules : (string * int) list; b_suppressions : int }

let rule_counts diags =
  List.fold_left
    (fun acc (d : D.t) ->
      let n = Option.value (List.assoc_opt d.D.rule acc) ~default:0 in
      (d.D.rule, n + 1) :: List.remove_assoc d.D.rule acc)
    [] diags
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let baseline_to_json b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":%s,\"rules\":{"
       (J.Emit.string_value baseline_schema));
  List.iteri
    (fun i (rule, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%s:%d" (J.Emit.string_value rule) n))
    b.b_rules;
  Buffer.add_string buf
    (Printf.sprintf "},\"suppressions\":%d}\n" b.b_suppressions);
  Buffer.contents buf

let load_baseline path =
  match J.parse (read_file path) with
  | exception Sys_error msg -> Error msg
  | exception J.Parse_error msg -> Error (path ^ ": " ^ msg)
  | j -> (
      match Option.bind (J.member "schema" j) J.to_string with
      | Some s when s = baseline_schema -> (
          let rules =
            match J.member "rules" j with
            | Some (J.Obj fields) ->
                Some
                  (List.filter_map
                     (fun (k, v) ->
                       Option.map (fun n -> (k, n)) (J.to_int v))
                     fields)
            | _ -> None
          in
          match
            (rules, Option.bind (J.member "suppressions" j) J.to_int)
          with
          | Some b_rules, Some b_suppressions ->
              Ok { b_rules; b_suppressions }
          | _ -> Error (path ^ ": malformed baseline"))
      | _ -> Error (path ^ ": not a " ^ baseline_schema ^ " file"))

let write_baseline path ~diags ~suppressions =
  write_file path
    (baseline_to_json
       { b_rules = rule_counts diags; b_suppressions = suppressions })

(* regressions: any rule whose count grew, or suppression-count growth.
   Improvements are reported separately so the snapshot can ratchet
   down. *)
let compare_baseline b ~diags ~suppressions =
  let current = rule_counts diags in
  let regressions = ref [] and improvements = ref [] in
  List.iter
    (fun (rule, n) ->
      let base = Option.value (List.assoc_opt rule b.b_rules) ~default:0 in
      if n > base then
        regressions :=
          Printf.sprintf "%s: %d finding(s), baseline allows %d" rule n base
          :: !regressions)
    current;
  List.iter
    (fun (rule, base) ->
      let n = Option.value (List.assoc_opt rule current) ~default:0 in
      if n < base then
        improvements :=
          Printf.sprintf "%s: %d finding(s), baseline allows %d" rule n base
          :: !improvements)
    b.b_rules;
  if suppressions > b.b_suppressions then
    regressions :=
      Printf.sprintf "suppressions: %d directive(s), baseline allows %d"
        suppressions b.b_suppressions
      :: !regressions
  else if suppressions < b.b_suppressions then
    improvements :=
      Printf.sprintf "suppressions: %d directive(s), baseline allows %d"
        suppressions b.b_suppressions
      :: !improvements;
  (List.rev !regressions, List.rev !improvements)
