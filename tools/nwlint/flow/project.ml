(* Whole-project source model for the interprocedural flow analysis.

   The per-file engine (nwlint_core) resolves module aliases inside a
   single compilation unit; the flow layer extends that prepass across
   files. A project knows, for every .ml under the analyzed roots:

   - its dune namespace: lib/<dir>/foo.ml lives in the wrapped library
     Nw_<dir>, so the canonical name of [let bar] in it is
     "Nw_<dir>.Foo.bar" (files outside lib/ get bare "Foo.bar");
   - every top-level value definition (including ones nested in
     [module M = struct .. end] and functor bodies, whose canonical
     names carry the module path, e.g. "Nw_localsim.Msg_net.Make.round");
   - project-wide module aliases, including functor instantiations:
     [module Boxed_kernel = Make (G)] maps the canonical module path
     Nw_localsim.Msg_net.Boxed_kernel to ...Msg_net.Make, so a
     cross-file [Net.round] (with [module Net = Nw_localsim.Msg_net.
     Boxed_kernel]) resolves to the functor body's definition.

   Resolution is name-based and deliberately conservative: a reference
   that does not resolve to a known project definition is treated as
   external (stdlib or opaque), never as a mutable global. *)

open Ppxlib

let flatten_lid lid =
  match Longident.flatten_exn lid with segs -> segs | exception _ -> []

let strip_stdlib = function "Stdlib" :: rest -> rest | segs -> segs
let dotted segs = String.concat "." segs

type file = {
  path : string;
  content : string;
  lib : string option;  (* wrapped-library namespace, e.g. "Nw_core" *)
  modname : string;  (* "Forest_algo" *)
  str : structure option;  (* None when the file fails to parse *)
  aliases : (string, string list) Hashtbl.t;  (* local module aliases *)
  opens : string list list;  (* structure-level [open M] paths *)
  top_modules : string list;  (* module names bound at any struct level *)
}

type def = {
  d_name : string;  (* canonical dotted name *)
  d_file : string;  (* path of the defining file *)
  d_modpath : string list;  (* module path inside the file *)
  d_expr : expression;
  d_loc : Location.t;
  d_mutable : bool;  (* rhs is a mutable-container constructor *)
}

type t = {
  files : file list;
  libs : (string, unit) Hashtbl.t;  (* known wrapper names *)
  lib_of_mod : (string, string) Hashtbl.t;  (* "Dpool" -> "Nw_localsim" *)
  defs : (string, def) Hashtbl.t;
  mod_aliases : (string, string list) Hashtbl.t;
      (* canonical module path -> canonical target segments *)
  digest : string;
}

(* ------------------------------------------------------------------ *)
(* namespacing                                                         *)

let path_segments path =
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")

(* anchor on the last "lib" segment, like the per-file engine's scope
   classifier, so relative prefixes classify identically *)
let lib_of_path path =
  let rec tail_from = function
    | [] -> []
    | "lib" :: rest -> rest
    | _ :: rest -> tail_from rest
  in
  match tail_from (path_segments path) with
  | dir :: _ :: _ -> Some ("Nw_" ^ dir)
  | _ -> None

let modname_of_path path =
  Filename.basename path |> Filename.remove_extension
  |> String.capitalize_ascii

let file_mod_segs file =
  match file.lib with
  | Some l -> [ l; file.modname ]
  | None -> [ file.modname ]

(* ------------------------------------------------------------------ *)
(* per-file collection                                                 *)

let unwrap_module_expr me =
  let rec go me =
    match me.pmod_desc with Pmod_constraint (me, _) -> go me | _ -> me
  in
  go me

(* the leftmost module identifier of an alias/instantiation rhs:
   [Make (G)] -> Make, [Nw_x.F (A) (B)] -> Nw_x.F *)
let rec module_expr_head me =
  match (unwrap_module_expr me).pmod_desc with
  | Pmod_ident { txt; _ } -> Some (flatten_lid txt)
  | Pmod_apply (f, _) -> module_expr_head f
  | _ -> None

let mutable_ctors =
  [
    [ "ref" ];
    [ "Atomic"; "make" ];
    [ "Hashtbl"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Array"; "make_matrix" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Buffer"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Weak"; "create" ];
  ]

let rec is_mutable_rhs e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> is_mutable_rhs e
  | Pexp_array _ -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let segs = strip_stdlib (flatten_lid txt) in
      List.mem segs mutable_ctors
  | _ -> false

(* collect structure-level info: local aliases (any depth, matching the
   per-file engine), opens, nested-module names, and raw defs *)
let scan_structure file str ~on_def ~on_alias =
  let rec item modpath it =
    match it.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> on_def modpath txt vb
            | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
                on_def modpath txt vb
            | _ -> ())
          vbs
    | Pstr_module mb -> module_binding modpath mb
    | Pstr_recmodule mbs -> List.iter (module_binding modpath) mbs
    | Pstr_include { pincl_mod = me; _ } -> module_body modpath me
    | _ -> ()
  and module_binding modpath mb =
    match mb.pmb_name.txt with
    | None -> ()
    | Some name -> (
        let me = unwrap_module_expr mb.pmb_expr in
        match me.pmod_desc with
        | Pmod_structure s -> List.iter (item (modpath @ [ name ])) s
        | Pmod_functor (_, body) ->
            (* defs in a functor body are canonical under the functor's
               own name; instantiations alias to it *)
            module_body (modpath @ [ name ]) body
        | Pmod_ident _ | Pmod_apply _ -> (
            match module_expr_head me with
            | Some segs -> on_alias modpath name segs
            | None -> ())
        | _ -> ())
  and module_body modpath me =
    match (unwrap_module_expr me).pmod_desc with
    | Pmod_structure s -> List.iter (item modpath) s
    | Pmod_functor (_, body) -> module_body modpath body
    | _ -> ()
  in
  match file.str with Some s -> List.iter (item []) s | None -> ignore str

let collect_file_tables str =
  let aliases = Hashtbl.create 8 in
  let opens = ref [] in
  let tops = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! module_binding mb =
        (match mb.pmb_name.txt with
        | Some name -> (
            tops := name :: !tops;
            match module_expr_head mb.pmb_expr with
            | Some segs when segs <> [] -> Hashtbl.replace aliases name segs
            | _ -> ())
        | None -> ());
        super#module_binding mb

      method! open_declaration od =
        (match (unwrap_module_expr od.popen_expr).pmod_desc with
        | Pmod_ident { txt; _ } -> opens := flatten_lid txt :: !opens
        | _ -> ());
        super#open_declaration od
    end
  in
  it#structure str;
  (aliases, List.rev !opens, !tops)

let load_file ~path ~content =
  let str =
    let lexbuf = Lexing.from_string content in
    Lexing.set_filename lexbuf path;
    match Parse.implementation lexbuf with
    | s -> Some s
    | exception _ -> None
  in
  let aliases, opens, top_modules =
    match str with
    | Some s -> collect_file_tables s
    | None -> (Hashtbl.create 1, [], [])
  in
  {
    path;
    content;
    lib = lib_of_path path;
    modname = modname_of_path path;
    str;
    aliases;
    opens;
    top_modules;
  }

(* ------------------------------------------------------------------ *)
(* project assembly                                                    *)

let expand_alias (aliases : (string, string list) Hashtbl.t) segs =
  let rec go fuel segs =
    if fuel = 0 then segs
    else
      match segs with
      | head :: rest -> (
          match Hashtbl.find_opt aliases head with
          | Some target when target <> [ head ] -> go (fuel - 1) (target @ rest)
          | _ -> segs)
      | [] -> segs
  in
  go 8 segs

let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

let rec drop k = function
  | _ :: rest when k > 0 -> drop (k - 1) rest
  | l -> l

let apply_mod_aliases t segs =
  let rec go fuel segs =
    if fuel = 0 then segs
    else
      let n = List.length segs in
      let rec try_len k =
        if k < 1 then None
        else
          let prefix = take k segs in
          match Hashtbl.find_opt t.mod_aliases (dotted prefix) with
          | Some target when target <> prefix -> Some (target @ drop k segs)
          | _ -> try_len (k - 1)
      in
      match try_len (min n 6) with
      | Some segs' -> go (fuel - 1) segs'
      | None -> segs
  in
  go 8 segs

(* canonicalize a module-qualified path in [file]'s context: expand
   local aliases, strip Stdlib, prefix the owning library for sibling
   or nested modules, then chase project-level module aliases *)
let canon t file segs =
  let segs = strip_stdlib (expand_alias file.aliases segs) in
  match segs with
  | [] -> []
  | head :: _ when Hashtbl.mem t.libs head -> apply_mod_aliases t segs
  | head :: _ when List.mem head file.top_modules ->
      apply_mod_aliases t (file_mod_segs file @ segs)
  | head :: _ -> (
      match Hashtbl.find_opt t.lib_of_mod head with
      | Some lib -> apply_mod_aliases t (lib :: segs)
      | None -> apply_mod_aliases t segs)

let rec drop_last = function
  | [] | [ _ ] -> []
  | x :: rest -> x :: drop_last rest

(* resolve a value reference to a known project definition. [modpath]
   is the module path of the reference site inside its file (innermost
   enclosing modules are searched outward for unqualified names). *)
let resolve_def t file ~modpath segs =
  match segs with
  | [] -> None
  | [ v ] ->
      let rec try_path mp =
        let cand = dotted (file_mod_segs file @ mp @ [ v ]) in
        match Hashtbl.find_opt t.defs cand with
        | Some d -> Some d
        | None -> if mp = [] then None else try_path (drop_last mp)
      in
      let rec try_opens = function
        | [] -> None
        | o :: rest -> (
            let cand = dotted (canon t file o @ [ v ]) in
            match Hashtbl.find_opt t.defs cand with
            | Some d -> Some d
            | None -> try_opens rest)
      in
      (match try_path modpath with
      | Some d -> Some d
      | None -> try_opens file.opens)
  | _ -> Hashtbl.find_opt t.defs (dotted (canon t file segs))

let file_by_path t path = List.find_opt (fun f -> f.path = path) t.files

let of_sources sources =
  let files =
    List.map (fun (path, content) -> load_file ~path ~content) sources
  in
  let libs = Hashtbl.create 8 in
  let lib_of_mod = Hashtbl.create 64 in
  List.iter
    (fun f ->
      match f.lib with
      | Some l ->
          Hashtbl.replace libs l ();
          if not (Hashtbl.mem lib_of_mod f.modname) then
            Hashtbl.replace lib_of_mod f.modname l
      | None -> ())
    files;
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\x01"
            (List.map (fun f -> f.path ^ "\x00" ^ f.content) files)))
  in
  let t =
    {
      files;
      libs;
      lib_of_mod;
      defs = Hashtbl.create 256;
      mod_aliases = Hashtbl.create 16;
      digest;
    }
  in
  (* pass 1: definitions *)
  List.iter
    (fun f ->
      scan_structure f f.str
        ~on_def:(fun modpath name vb ->
          let d_name = dotted (file_mod_segs f @ modpath @ [ name ]) in
          if not (Hashtbl.mem t.defs d_name) then
            Hashtbl.replace t.defs d_name
              {
                d_name;
                d_file = f.path;
                d_modpath = modpath;
                d_expr = vb.pvb_expr;
                d_loc = vb.pvb_loc;
                d_mutable = is_mutable_rhs vb.pvb_expr;
              })
        ~on_alias:(fun _ _ _ -> ()))
    files;
  (* pass 2: project-level module aliases (canonical lhs -> canonical
     rhs); rhs canonicalization uses pass-1 tables only, chains resolve
     iteratively at query time *)
  List.iter
    (fun f ->
      scan_structure f f.str
        ~on_def:(fun _ _ _ -> ())
        ~on_alias:(fun modpath name rhs ->
          let lhs = dotted (file_mod_segs f @ modpath @ [ name ]) in
          let target = canon t f rhs in
          if target <> [] && dotted target <> lhs then
            Hashtbl.replace t.mod_aliases lhs target))
    files;
  t

let load paths =
  let files =
    Nwlint_core.Engine.collect_files paths
    |> List.filter (fun p -> Filename.check_suffix p ".ml")
  in
  of_sources
    (List.map
       (fun p ->
         let ic = open_in_bin p in
         let content =
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         in
         (p, content))
       files)
