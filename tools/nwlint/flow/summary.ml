(* Bottom-up effect summaries over the call-graph condensation.

   Nodes come from Effects; edges are call edges plus spawn edges
   (effects escape through a spawned callback to its spawner, which is
   what makes a pass body "own" the IO its shard lambdas perform).
   Tarjan emits SCCs in reverse topological order — every SCC only
   after all SCCs it reaches — so one linear fold computes each
   summary as the union of its members' intrinsic events and the
   already-final summaries of callees.

   Rules use [witness]: a BFS from a root to the nearest node whose
   *intrinsic* events satisfy a predicate, returning the call chain
   for the diagnostic message. *)

module E = Effects

module Key = struct
  type t = E.event

  (* events are pure string/option trees; structural compare is stable *)
  let compare = Stdlib.compare
end

module ESet = Set.Make (Key)

type t = {
  nodes : (string, E.node) Hashtbl.t;
  summaries : (string, ESet.t) Hashtbl.t;
  sccs : string list list;  (* reverse topological order *)
}

let successors g (n : E.node) =
  List.filter_map
    (fun (callee, _) -> if Hashtbl.mem g callee then Some callee else None)
    n.E.n_calls
  @ List.filter_map
      (fun (_, root, _) -> if Hashtbl.mem g root then Some root else None)
      n.E.n_spawns

(* iterative Tarjan (explicit stack so deep call chains cannot blow the
   OCaml stack) *)
let tarjan nodes =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let visit start =
    if not (Hashtbl.mem index start) then begin
      (* frames: (name, remaining successors) *)
      let frames = ref [] in
      let push v =
        Hashtbl.replace index v !counter;
        Hashtbl.replace lowlink v !counter;
        incr counter;
        stack := v :: !stack;
        Hashtbl.replace on_stack v ();
        let succs =
          match Hashtbl.find_opt nodes v with
          | Some n -> successors nodes n
          | None -> []
        in
        frames := (v, ref succs) :: !frames
      in
      push start;
      while !frames <> [] do
        let v, succs = List.hd !frames in
        match !succs with
        | w :: rest ->
            succs := rest;
            if not (Hashtbl.mem index w) then push w
            else if Hashtbl.mem on_stack w then
              Hashtbl.replace lowlink v
                (min (Hashtbl.find lowlink v) (Hashtbl.find index w))
        | [] ->
            frames := List.tl !frames;
            (match !frames with
            | (parent, _) :: _ ->
                Hashtbl.replace lowlink parent
                  (min (Hashtbl.find lowlink parent) (Hashtbl.find lowlink v))
            | [] -> ());
            if Hashtbl.find lowlink v = Hashtbl.find index v then begin
              let scc = ref [] in
              let fin = ref false in
              while not !fin do
                match !stack with
                | [] -> fin := true
                | w :: rest ->
                    stack := rest;
                    Hashtbl.remove on_stack w;
                    scc := w :: !scc;
                    if String.equal w v then fin := true
              done;
              sccs := !scc :: !sccs
            end
      done
    end
  in
  Hashtbl.iter (fun name _ -> visit name) nodes;
  List.rev !sccs

let compute nodes_list =
  let nodes = Hashtbl.create 256 in
  List.iter
    (fun (n : E.node) ->
      if not (Hashtbl.mem nodes n.E.n_name) then
        Hashtbl.replace nodes n.E.n_name n)
    nodes_list;
  let sccs = tarjan nodes in
  let summaries = Hashtbl.create 256 in
  List.iter
    (fun scc ->
      let base =
        List.fold_left
          (fun acc name ->
            match Hashtbl.find_opt nodes name with
            | None -> acc
            | Some n ->
                let acc =
                  List.fold_left
                    (fun acc (ev, _) -> ESet.add ev acc)
                    acc n.E.n_events
                in
                List.fold_left
                  (fun acc callee ->
                    match Hashtbl.find_opt summaries callee with
                    | Some s -> ESet.union acc s
                    | None -> acc)
                  acc (successors nodes n))
          ESet.empty scc
      in
      List.iter (fun name -> Hashtbl.replace summaries name base) scc)
    sccs;
  { nodes; summaries; sccs }

let summary t name =
  Option.value (Hashtbl.find_opt t.summaries name) ~default:ESet.empty

(* BFS from [root]; [pred] examines a node's intrinsic events. Returns
   the call chain root..owner and the first matching (event, loc). *)
let witness t ~root ~pred =
  let seen = Hashtbl.create 64 in
  let q = Queue.create () in
  Queue.add (root, [ root ]) q;
  Hashtbl.replace seen root ();
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let name, chain = Queue.pop q in
    match Hashtbl.find_opt t.nodes name with
    | None -> ()
    | Some n -> (
        match
          List.find_opt (fun (ev, _) -> pred n ev) (List.rev n.E.n_events)
        with
        | Some (ev, loc) -> result := Some (List.rev chain, ev, loc)
        | None ->
            List.iter
              (fun succ ->
                if not (Hashtbl.mem seen succ) then begin
                  Hashtbl.replace seen succ ();
                  Queue.add (succ, succ :: chain) q
                end)
              (successors t.nodes n))
  done;
  !result

(* human-readable effect signature for --flow-summaries and the cache *)
let signature t name =
  let s = summary t name in
  let tags = ref [] in
  let add tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  ESet.iter
    (fun ev ->
      match ev with
      | E.Write_global (_, r) -> add ("writes(" ^ E.region_name r ^ ")")
      | E.Store_write _ -> add "writes(Store)"
      | E.Dls_write -> add "writes(Domain.DLS)"
      | E.Dls_read -> add "reads(Domain.DLS)"
      | E.Dls_new_key -> add "dls-new-key"
      | E.Read_mutable _ -> add "reads-mutable"
      | E.Store_read _ -> add "reads(Store)"
      | E.Io _ -> add "io"
      | E.Wall_clock _ -> add "wall-clock"
      | E.Rng_unseeded _ -> add "rng-unseeded")
    s;
  match List.sort String.compare !tags with
  | [] -> "pure"
  | tags -> String.concat " " tags
