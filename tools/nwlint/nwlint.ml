(* nwlint driver.

     nwlint [--json] [--fail-on warning|error] [--list-rules]
            [--deny-module M] [--allow-scalar F] [--deny-value V]
            [--scratch M] [--allow-rng PREFIX] [--allow-clock PREFIX]
            [--allow-composite Module.func] PATH...

   Paths are files or directories (searched recursively for .ml/.mli,
   skipping dot/underscore directories such as _build). Exit status:
   0 clean, 1 findings at or above the --fail-on threshold, 2 usage or
   internal error (a crashed rule exits 2, so CI distinguishes "tool
   broke" from "tool found something"). *)

module D = Nwlint_core.Diagnostic
module Config = Nwlint_core.Config
module Engine = Nwlint_core.Engine

let usage () =
  prerr_endline
    "usage: nwlint [--json] [--fail-on warning|error] [--list-rules]\n\
    \              [--deny-module M] [--allow-scalar F] [--deny-value V]\n\
    \              [--scratch M] [--allow-rng PREFIX] [--allow-clock PREFIX]\n\
    \              [--allow-composite Module.func] PATH...";
  exit 2

let list_rules () =
  List.iter
    (fun (id, sev, summary) ->
      Printf.printf "%-10s %-8s %s\n" id (D.severity_to_string sev) summary)
    Config.rules;
  exit 0

let () =
  let json = ref false in
  let fail_on = ref D.Warning in
  let paths = ref [] in
  let config = ref Config.default in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--list-rules" :: _ -> list_rules ()
    | "--fail-on" :: level :: rest ->
        (match level with
        | "warning" -> fail_on := D.Warning
        | "error" -> fail_on := D.Error
        | _ -> usage ());
        parse rest
    | "--deny-module" :: m :: rest ->
        config := { !config with det2_modules = m :: !config.det2_modules };
        parse rest
    | "--allow-scalar" :: f :: rest ->
        config :=
          { !config with det2_scalar_allow = f :: !config.det2_scalar_allow };
        parse rest
    | "--deny-value" :: v :: rest ->
        config :=
          { !config with det2_value_deny = v :: !config.det2_value_deny };
        parse rest
    | "--scratch" :: m :: rest ->
        config :=
          { !config with scratch_modules = m :: !config.scratch_modules };
        parse rest
    | "--allow-rng" :: p :: rest ->
        config :=
          { !config with det1_rng_allow = p :: !config.det1_rng_allow };
        parse rest
    | "--allow-clock" :: p :: rest ->
        config :=
          { !config with det1_clock_allow = p :: !config.det1_clock_allow };
        parse rest
    | "--allow-composite" :: f :: rest ->
        config := { !config with eng1_allow = f :: !config.eng1_allow };
        parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let files =
    try Engine.collect_files (List.rev !paths)
    with Sys_error msg ->
      Printf.eprintf "nwlint: %s\n" msg;
      exit 2
  in
  if files = [] then begin
    prerr_endline "nwlint: no .ml/.mli files found";
    exit 2
  end;
  let diags =
    try List.concat_map (Engine.lint_file ~config:!config) files
    with exn ->
      Printf.eprintf "nwlint: internal error: %s\n" (Printexc.to_string exn);
      exit 2
  in
  let diags = List.sort D.compare_pos diags in
  let errors =
    List.length (List.filter (fun d -> d.D.severity = D.Error) diags)
  in
  let warnings = List.length diags - errors in
  if !json then begin
    Printf.printf
      "{\"tool\":\"nwlint\",\"version\":1,\"files\":%d,\"errors\":%d,\"warnings\":%d,\"findings\":[%s]}\n"
      (List.length files) errors warnings
      (String.concat "," (List.map D.to_json diags))
  end
  else begin
    List.iter (fun d -> print_endline (D.to_text d)) diags;
    Printf.printf "nwlint: %d file%s, %d error%s, %d warning%s\n"
      (List.length files)
      (if List.length files = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")
  end;
  let failing =
    match !fail_on with D.Error -> errors > 0 | D.Warning -> diags <> []
  in
  exit (if failing then 1 else 0)
