(* nwlint driver.

     nwlint [--json] [--fail-on warning|error] [--list-rules]
            [--deny-module M] [--allow-scalar F] [--deny-value V]
            [--scratch M] [--allow-rng PREFIX] [--allow-clock PREFIX]
            [--allow-composite Module.func]
            [--flow] [--flow-cache FILE] [--flow-summaries]
            [--baseline FILE] [--write-baseline FILE] PATH...

   Paths are files or directories (searched recursively for .ml/.mli,
   skipping dot/underscore directories such as _build). --flow adds the
   interprocedural layer (call graph + effect summaries: RACE001,
   RACE002, CONTRACT001, EFF001) over the .ml files; --baseline
   compares finding and suppression counts against a committed
   snapshot and fails on growth (the ratchet); --write-baseline
   refreshes the snapshot. Exit status: 0 clean, 1 findings at or
   above the --fail-on threshold or a baseline regression, 2 usage or
   internal error (a crashed rule exits 2, so CI distinguishes "tool
   broke" from "tool found something"). *)

module D = Nwlint_core.Diagnostic
module Config = Nwlint_core.Config
module Engine = Nwlint_core.Engine
module Suppress = Nwlint_core.Suppress
module Flow = Nwlint_flow.Flow

let usage () =
  prerr_endline
    "usage: nwlint [--json] [--fail-on warning|error] [--list-rules]\n\
    \              [--deny-module M] [--allow-scalar F] [--deny-value V]\n\
    \              [--scratch M] [--allow-rng PREFIX] [--allow-clock PREFIX]\n\
    \              [--allow-composite Module.func]\n\
    \              [--flow] [--flow-cache FILE] [--flow-summaries]\n\
    \              [--baseline FILE] [--write-baseline FILE] PATH...";
  exit 2

let list_rules () =
  List.iter
    (fun (id, sev, summary) ->
      Printf.printf "%-10s %-8s %s\n" id (D.severity_to_string sev) summary)
    Config.rules;
  exit 0

let () =
  let json = ref false in
  let fail_on = ref D.Warning in
  let paths = ref [] in
  let config = ref Config.default in
  let flow = ref false in
  let flow_cache = ref None in
  let flow_summaries = ref false in
  let baseline = ref None in
  let write_baseline = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--list-rules" :: _ -> list_rules ()
    | "--fail-on" :: level :: rest ->
        (match level with
        | "warning" -> fail_on := D.Warning
        | "error" -> fail_on := D.Error
        | _ -> usage ());
        parse rest
    | "--deny-module" :: m :: rest ->
        config := { !config with det2_modules = m :: !config.det2_modules };
        parse rest
    | "--allow-scalar" :: f :: rest ->
        config :=
          { !config with det2_scalar_allow = f :: !config.det2_scalar_allow };
        parse rest
    | "--deny-value" :: v :: rest ->
        config :=
          { !config with det2_value_deny = v :: !config.det2_value_deny };
        parse rest
    | "--scratch" :: m :: rest ->
        config :=
          { !config with scratch_modules = m :: !config.scratch_modules };
        parse rest
    | "--allow-rng" :: p :: rest ->
        config :=
          { !config with det1_rng_allow = p :: !config.det1_rng_allow };
        parse rest
    | "--allow-clock" :: p :: rest ->
        config :=
          { !config with det1_clock_allow = p :: !config.det1_clock_allow };
        parse rest
    | "--allow-composite" :: f :: rest ->
        config := { !config with eng1_allow = f :: !config.eng1_allow };
        parse rest
    | "--flow" :: rest ->
        flow := true;
        parse rest
    | "--flow-cache" :: f :: rest ->
        flow := true;
        flow_cache := Some f;
        parse rest
    | "--flow-summaries" :: rest ->
        flow := true;
        flow_summaries := true;
        parse rest
    | "--baseline" :: f :: rest ->
        baseline := Some f;
        parse rest
    | "--write-baseline" :: f :: rest ->
        write_baseline := Some f;
        parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let files =
    try Engine.collect_files (List.rev !paths)
    with Sys_error msg ->
      Printf.eprintf "nwlint: %s\n" msg;
      exit 2
  in
  if files = [] then begin
    prerr_endline "nwlint: no .ml/.mli files found";
    exit 2
  end;
  let classic =
    try List.concat_map (Engine.lint_file ~config:!config) files
    with exn ->
      Printf.eprintf "nwlint: internal error: %s\n" (Printexc.to_string exn);
      exit 2
  in
  let flow_result =
    if not !flow then None
    else
      try Some (Flow.analyze_paths ?cache:!flow_cache (List.rev !paths))
      with exn ->
        Printf.eprintf "nwlint: flow analysis error: %s\n"
          (Printexc.to_string exn);
        exit 2
  in
  let diags =
    List.sort D.compare_pos
      (classic
      @ match flow_result with Some r -> r.Flow.findings | None -> [])
  in
  let suppressions =
    List.fold_left
      (fun acc path ->
        match Engine.read_file path with
        | content -> acc + List.length (Suppress.scan content)
        | exception Sys_error _ -> acc)
      0 files
  in
  let errors =
    List.length (List.filter (fun d -> d.D.severity = D.Error) diags)
  in
  let warnings = List.length diags - errors in
  if !json then begin
    Printf.printf
      "{\"tool\":\"nwlint\",\"version\":1,\"files\":%d,\"errors\":%d,\"warnings\":%d,\"suppressions\":%d,\"findings\":[%s]}\n"
      (List.length files) errors warnings suppressions
      (String.concat "," (List.map D.to_json diags))
  end
  else begin
    List.iter (fun d -> print_endline (D.to_text d)) diags;
    (match flow_result with
    | Some r ->
        Printf.printf
          "nwlint-flow: %d function%s, %d scc%s, %d pass contract%s, %d \
           pipeline%s\n"
          r.Flow.function_count
          (if r.Flow.function_count = 1 then "" else "s")
          r.Flow.scc_count
          (if r.Flow.scc_count = 1 then "" else "s")
          r.Flow.pass_count
          (if r.Flow.pass_count = 1 then "" else "s")
          (List.length r.Flow.pipelines)
          (if List.length r.Flow.pipelines = 1 then "" else "s");
        if !flow_summaries then
          List.iter
            (fun (fn, eff) -> Printf.printf "  %s: %s\n" fn eff)
            r.Flow.summaries
    | None -> ());
    Printf.printf "nwlint: %d file%s, %d error%s, %d warning%s\n"
      (List.length files)
      (if List.length files = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")
  end;
  (match !write_baseline with
  | Some path -> (
      try Flow.write_baseline path ~diags ~suppressions
      with Sys_error msg ->
        Printf.eprintf "nwlint: cannot write baseline: %s\n" msg;
        exit 2)
  | None -> ());
  let regressed =
    match !baseline with
    | None -> false
    | Some path -> (
        match Flow.load_baseline path with
        | Error msg ->
            Printf.eprintf "nwlint: baseline: %s\n" msg;
            exit 2
        | Ok b ->
            let regressions, improvements =
              Flow.compare_baseline b ~diags ~suppressions
            in
            List.iter
              (fun r -> Printf.eprintf "nwlint: baseline regression: %s\n" r)
              regressions;
            List.iter
              (fun r ->
                Printf.eprintf
                  "nwlint: baseline can ratchet down (re-run with \
                   --write-baseline): %s\n"
                  r)
              improvements;
            regressions <> [])
  in
  let failing =
    match !fail_on with D.Error -> errors > 0 | D.Warning -> diags <> []
  in
  exit (if failing || regressed then 1 else 0)
