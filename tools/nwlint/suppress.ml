(* File-level suppression directives:

     (* nwlint:disable DET002, LEDGER001 -- scratch harness, measured *)

   A directive disables the named rules for the whole file and must
   carry a ` -- justification`. The engine reports directives that are
   unjustified (SUPP001), never fire (SUPP002), or name unknown rule
   ids (SUPP003). The scanner is comment-aware: it honours nested
   comments and skips string/char literals so a "(*" inside a string
   never opens a directive. *)

type directive = {
  line : int;
  rules : string list;
  justified : bool;
  mutable used : bool;
}

let is_rule_char c =
  (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* parse the text of one comment body; returns None when the comment is
   not a directive *)
let parse_directive ~line body =
  let key = "nwlint:disable" in
  match
    (* find the directive keyword inside the comment body *)
    let klen = String.length key in
    let n = String.length body in
    let rec find i =
      if i + klen > n then None
      else if String.sub body i klen = key then Some (i + klen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start ->
      let n = String.length body in
      (* rule ids up to `--` or end of comment *)
      let rules = ref [] in
      let buf = Buffer.create 8 in
      let flush () =
        if Buffer.length buf > 0 then begin
          rules := Buffer.contents buf :: !rules;
          Buffer.clear buf
        end
      in
      let justified = ref false in
      let i = ref start in
      (try
         while !i < n do
           let c = body.[!i] in
           if c = '-' && !i + 1 < n && body.[!i + 1] = '-' then begin
             (* justification = any non-blank text after the dashes *)
             let rest = String.sub body (!i + 2) (n - !i - 2) in
             justified := String.exists (fun c -> c <> ' ' && c <> '\t' && c <> '\n') rest;
             raise Exit
           end
           else if is_rule_char c then Buffer.add_char buf c
           else flush ();
           incr i
         done
       with Exit -> ());
      flush ();
      let rules = List.rev !rules in
      if rules = [] then None
      else Some { line; rules; justified = !justified; used = false }

(* scan [source] for comments, tracking line numbers and skipping
   string and (single-quote) char literals *)
let scan source =
  let n = String.length source in
  let directives = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = source.[!i] in
    if c = '"' then begin
      (* string literal: skip to unescaped closing quote *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (match source.[!i] with
        | '\\' -> incr i
        | '"' -> fin := true
        | c -> bump c);
        incr i
      done
    end
    else if
      c = '\''
      && !i + 2 < n
      && (source.[!i + 1] <> '\\' && source.[!i + 2] = '\'')
    then i := !i + 3 (* plain char literal like 'x' *)
    else if c = '\'' && !i + 1 < n && source.[!i + 1] = '\\' then begin
      (* escaped char literal: skip to closing quote *)
      i := !i + 2;
      while !i < n && source.[!i] <> '\'' do incr i done;
      incr i
    end
    else if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
      let start_line = !line in
      let body = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if !i + 1 < n && source.[!i] = '(' && source.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string body "(*";
          i := !i + 2
        end
        else if !i + 1 < n && source.[!i] = '*' && source.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string body "*)";
          i := !i + 2
        end
        else begin
          bump source.[!i];
          Buffer.add_char body source.[!i];
          incr i
        end
      done;
      match parse_directive ~line:start_line (Buffer.contents body) with
      | Some d -> directives := d :: !directives
      | None -> ()
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !directives
